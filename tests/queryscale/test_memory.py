"""Memory-regression guard for the query-scale layer.

At 100k duplicate-heavy subscriptions the deduplicated service must hold
its standing-query state under an absolute per-query byte budget *and*
at least :data:`MIN_DEDUP_RATIO` times less of it than the per-subscriber
baseline.  The measurement mirrors the ``query-scale`` bench workload
(``docs/BENCHMARKING.md``): deep-size bytes of the engine plus the
query-scale layer under one shared memo, minus a zero-subscription
baseline over the identical document stream so window/document state
cancels out.

Deep sizing rides :func:`sys.getsizeof`, whose return value is only
meaningful on CPython -- the suite self-skips elsewhere
(:func:`repro.queryscale.sizing.getsizeof_reliable`).
"""

import random

import pytest

from repro.queryscale import QueryScaleOptions, deep_size_of
from repro.queryscale.sizing import getsizeof_reliable
from repro.service import EngineSpec, MonitoringService, WindowSpec

pytestmark = pytest.mark.skipif(
    not getsizeof_reliable(),
    reason="deep-size measurement needs a reliable sys.getsizeof (CPython)",
)

SUBSCRIPTIONS = 100_000
FANOUT = 10  # subscribers per distinct term/weight set, as in the bench

#: Absolute ceiling on deduplicated bytes/query at 100k subscriptions.
#: Measured ~520 B/query on CPython 3.11 x86-64; the budget leaves
#: headroom for pointer-width and allocator variance, not for a regression
#: back toward per-subscriber storage (~2.7 kB/query).
BYTES_PER_QUERY_BUDGET = 1500.0

#: The dedup layer must shrink standing-query state at least this much
#: on a fanout-10 workload (measured ~5.3x).
MIN_DEDUP_RATIO = 3.0


def _standing_query_bytes(subscriptions, dedup):
    """Deep-size bytes attributable to ``subscriptions`` standing queries."""
    spec = EngineSpec(kind="ita", window=WindowSpec.count(256))
    if dedup:
        spec = spec.with_overrides(queryscale=QueryScaleOptions(dedup=True))
    vocabulary = [f"qterm{index}" for index in range(2_000)]
    rng = random.Random(29)
    distinct_texts = [
        " ".join(rng.sample(vocabulary, 6))
        for _ in range(max(subscriptions // FANOUT, 1))
    ]
    doc_rng = random.Random(31)
    documents = [" ".join(doc_rng.sample(vocabulary, 8)) for _ in range(32)]

    service = MonitoringService(spec)
    try:
        for index in range(subscriptions):
            service.subscribe(distinct_texts[index % len(distinct_texts)], k=5)
        service.ingest(documents)
        memo: set = set()
        total = deep_size_of(service.engine, memo)
        if service.queryscale is not None:
            total += service.queryscale.bytes_resident(memo)
    finally:
        service.close()
    return total


def test_100k_dedup_bytes_per_query_budget_and_ratio():
    baseline = _standing_query_bytes(0, dedup=False)
    deduped = _standing_query_bytes(SUBSCRIPTIONS, dedup=True)
    undeduped = _standing_query_bytes(SUBSCRIPTIONS, dedup=False)

    per_query_on = max(deduped - baseline, 0) / SUBSCRIPTIONS
    per_query_off = max(undeduped - baseline, 0) / SUBSCRIPTIONS

    assert per_query_on <= BYTES_PER_QUERY_BUDGET, (
        f"deduplicated standing-query state regressed: {per_query_on:.1f} "
        f"bytes/query at {SUBSCRIPTIONS} subscriptions "
        f"(budget {BYTES_PER_QUERY_BUDGET})"
    )
    assert per_query_off >= MIN_DEDUP_RATIO * per_query_on, (
        f"dedup no longer pays for itself: {per_query_off:.1f} bytes/query "
        f"undeduped vs {per_query_on:.1f} deduped "
        f"(required ratio {MIN_DEDUP_RATIO})"
    )


def test_compaction_exposes_byte_metrics():
    """``compact()`` plus the metric families the bench and dashboards
    read: resident bytes and bytes/query must be measured, non-zero and
    consistent."""
    spec = EngineSpec(kind="ita", window=WindowSpec.count(32)).with_overrides(
        queryscale=QueryScaleOptions(dedup=True)
    )
    service = MonitoringService(spec)
    try:
        for index in range(60):
            service.subscribe(f"alpha{index % 6} beta{index % 3}", k=3)
        service.ingest([f"alpha{index % 6} gamma" for index in range(8)])
        manager = service.queryscale
        manager.compact()
        samples = manager.metrics_samples()
        assert "repro_query_bytes_resident" in samples
        assert "repro_query_bytes_per_query" in samples
        resident = samples["repro_query_bytes_resident"]
        assert resident > 0
        assert samples["repro_query_bytes_per_query"] == pytest.approx(
            resident / manager.subscribed
        )
        assert samples["repro_queries_dedup_saved"] == float(
            manager.subscribed - manager.canonical_count
        )
    finally:
        service.close()
