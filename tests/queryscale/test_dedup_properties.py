"""Randomized differential properties of the query-scale layer.

A seeded, duplicate-heavy operation tape (many subscribers sharing few
distinct term/weight sets, with the term *insertion order permuted* per
subscription so ``"white tower"`` and ``"tower white"`` style duplicates
are exercised) is replayed twice over every engine kind: once with the
query-scale layer disabled (the per-subscriber baseline) and once per
query-scale configuration -- plain dedup, event-count hibernation and a
resident-cap hibernation policy.

The contract: the query-scale layer must be **invisible to subscribers**.
Result digests at every observation point, per-ingest change sets (the
fan-out re-orders *within* one event by subscriber id, the same latitude
the conformance suite grants the cluster's merged stream; per-query
ordering is pinned exactly by the alert streams) and per-query alert
streams must be bit-identical to the baseline run
(tie-free tapes: continuous weights make score ties absent, which is the
repository-wide bit-identity convention -- see
``tests/conformance/test_differential_fuzz.py``).  Snapshots and counters
are *not* compared across dedup on/off: computing and storing less is the
subsystem's point, and the properties below pin that direction instead
(strictly fewer scores computed, canonical count == distinct sets).
"""

from __future__ import annotations

import random
from collections import defaultdict
from typing import Any, Dict, List, Optional, Tuple

import pytest

from repro.query.query import ContinuousQuery
from repro.queryscale import QueryScaleOptions
from repro.service import MonitoringService, WindowSpec, spec_from_name
from tests.conformance.test_differential_fuzz import (
    digest_results,
    normalize_alert,
    normalize_change,
)
from tests.conftest import make_document

WINDOW_SIZE = 24
NUM_TERMS = 16

#: query-scale configurations differentially checked against dedup-off
OPTION_SETS = [
    pytest.param(QueryScaleOptions(dedup=True), id="dedup"),
    pytest.param(QueryScaleOptions(dedup=True, hibernate_after=6), id="hibernate"),
    pytest.param(QueryScaleOptions(dedup=True, max_resident=3), id="max-resident"),
]


# --------------------------------------------------------------------------- #
# tape generation (pure data, fully determined by the seed)
# --------------------------------------------------------------------------- #
def generate_dedup_tape(
    seed: int,
    num_ops: int = 200,
    pool_size: int = 8,
    include_checkpoints: bool = True,
) -> List[Tuple]:
    """A duplicate-heavy tape over a small pool of distinct queries.

    Every subscribe op draws its ``(weights, k)`` from the pool and
    shuffles the weight dict's insertion order, so canonicalization (not
    dict identity) is what makes subscriptions coincide.  Weights are
    continuous, keeping the tape tie-free.
    """
    rng = random.Random(seed)

    def weight() -> float:
        return round(rng.uniform(0.05, 1.0), 6)

    pool: List[Tuple[Tuple[Tuple[int, float], ...], int]] = []
    for _ in range(pool_size):
        count = rng.randint(1, 4)
        terms = rng.sample(range(NUM_TERMS), count)
        pool.append((tuple((term, weight()) for term in terms), rng.randint(1, 3)))

    def permuted_weights(entry: Tuple[Tuple[int, float], ...]) -> Dict[int, float]:
        items = list(entry)
        rng.shuffle(items)
        return dict(items)

    tape: List[Tuple] = []
    next_query_id = 0
    next_doc_id = 0
    clock = 0.0
    active: List[int] = []

    def make_docs(count: int) -> List:
        nonlocal next_doc_id, clock
        documents = []
        for _ in range(count):
            clock += rng.choice([0.1, 0.5, 1.0])
            term_count = rng.randint(0, 5)
            terms = rng.sample(range(NUM_TERMS), term_count) if term_count else []
            documents.append(
                make_document(
                    next_doc_id,
                    {term: weight() for term in terms},
                    arrival_time=round(clock, 6),
                )
            )
            next_doc_id += 1
        return documents

    # Every distinct set subscribed once up front plus a little history,
    # so the interleaving starts with real duplicates to fan out to.
    for entry, k in pool:
        tape.append(("subscribe", next_query_id, permuted_weights(entry), k))
        active.append(next_query_id)
        next_query_id += 1
    tape.append(("ingest", make_docs(10)))

    while len(tape) < num_ops:
        roll = rng.random()
        if roll < 0.30:
            entry, k = pool[rng.randrange(len(pool))]
            tape.append(("subscribe", next_query_id, permuted_weights(entry), k))
            active.append(next_query_id)
            next_query_id += 1
        elif roll < 0.40 and len(active) > 2:
            tape.append(("unsubscribe", active.pop(rng.randrange(len(active)))))
        elif roll < 0.65:
            tape.append(("ingest", make_docs(1)))
        elif roll < 0.82:
            tape.append(("ingest", make_docs(rng.randint(2, 9))))
        elif roll < 0.95 or not include_checkpoints:
            tape.append(("observe",))
        else:
            tape.append(("checkpoint",))
    tape.append(("observe",))
    return tape


# --------------------------------------------------------------------------- #
# tape replay
# --------------------------------------------------------------------------- #
class DedupRunLog:
    """Subscriber-visible output of one replay, plus dedup facts."""

    def __init__(self) -> None:
        self.changes: List[List[Tuple]] = []
        self.digests: List[Dict[int, Tuple]] = []
        self.alerts: Dict[int, List[Tuple]] = defaultdict(list)
        self.scores_computed = 0
        self.saw_hibernation = False
        self.max_canonical = 0
        self.max_subscribed = 0


def run_with_options(
    engine_name: str, tape: List[Tuple], options: Optional[QueryScaleOptions] = None
) -> DedupRunLog:
    spec = spec_from_name(engine_name, window=WindowSpec.count(WINDOW_SIZE))
    if options is not None:
        spec = spec.with_overrides(queryscale=options)
    log = DedupRunLog()
    service = MonitoringService(spec)
    handles: Dict[int, Any] = {}

    def drain_alerts() -> None:
        for query_id, handle in handles.items():
            log.alerts[query_id].extend(
                normalize_alert(alert) for alert in handle.changes()
            )

    def note_queryscale() -> None:
        manager = service.queryscale
        if manager is None:
            return
        log.saw_hibernation = log.saw_hibernation or manager.hibernated_count > 0
        log.max_canonical = max(log.max_canonical, manager.canonical_count)
        log.max_subscribed = max(log.max_subscribed, manager.subscribed)

    try:
        for op in tape:
            kind = op[0]
            if kind == "subscribe":
                _, query_id, weights, k = op
                handles[query_id] = service.subscribe(
                    ContinuousQuery(query_id=query_id, weights=weights, k=k)
                )
            elif kind == "unsubscribe":
                _, query_id = op
                drain_alerts()
                handles.pop(query_id).unsubscribe()
            elif kind == "ingest":
                _, documents = op
                changes = service.ingest(documents)
                log.changes.append(
                    sorted(normalize_change(change) for change in changes)
                )
            elif kind == "observe":
                drain_alerts()
                log.digests.append(digest_results(service.results()))
                if service.queryscale is not None:
                    service.queryscale.check_invariants()
            elif kind == "checkpoint":
                drain_alerts()
                snapshot = service.snapshot()
                service.close()
                service = MonitoringService.restore(snapshot)
                handles = {query_id: service.handle(query_id) for query_id in handles}
            else:  # pragma: no cover - tape generator bug
                raise AssertionError(f"unknown op {kind!r}")
            drain_alerts()
            note_queryscale()
        log.scores_computed = service.counters.as_dict()["scores_computed"]
    finally:
        service.close()
    return log


def assert_subscriber_streams_match(
    baseline: DedupRunLog, log: DedupRunLog, context: str
) -> None:
    assert log.digests == baseline.digests, f"result digests diverged ({context})"
    assert log.changes == baseline.changes, f"change streams diverged ({context})"
    assert dict(log.alerts) == dict(baseline.alerts), f"alert streams diverged ({context})"


def assert_scoring_savings(
    baseline: DedupRunLog, log: DedupRunLog, options: QueryScaleOptions
) -> None:
    """Plain dedup must score strictly fewer events than the
    per-subscriber run (O(distinct), the subsystem's point).  The
    hibernation variants are exempt: waking re-registers a query against
    the live window, so a churn-heavy tape can legitimately re-score more
    than dedup saves -- hibernation trades CPU for resident memory."""
    if options.hibernation_enabled:
        return
    assert log.scores_computed < baseline.scores_computed


# --------------------------------------------------------------------------- #
# the differential suites
# --------------------------------------------------------------------------- #
@pytest.mark.parametrize("seed", [7717, 9341])
@pytest.mark.parametrize("options", OPTION_SETS)
def test_ita_matches_baseline(seed, options):
    tape = generate_dedup_tape(seed)
    baseline = run_with_options("ita", tape)
    log = run_with_options("ita", tape, options)
    assert_subscriber_streams_match(baseline, log, f"ita seed={seed} {options}")
    assert_scoring_savings(baseline, log, options)


@pytest.mark.parametrize("options", OPTION_SETS)
def test_sharded_cluster_matches_baseline(options):
    tape = generate_dedup_tape(7717)
    baseline = run_with_options("sharded-ita-3", tape)
    log = run_with_options("sharded-ita-3", tape, options)
    assert_subscriber_streams_match(baseline, log, f"sharded-ita-3 {options}")
    assert_scoring_savings(baseline, log, options)


@pytest.mark.parametrize("options", OPTION_SETS)
def test_proc_cluster_matches_baseline(options):
    """The out-of-process cluster behind the same query-scale layer.

    A shorter, checkpoint-free tape: worker processes make each op a
    round-trip, and the proc cluster's durability/restore path is
    exercised by its own suite, not here.
    """
    tape = generate_dedup_tape(5531, num_ops=80, include_checkpoints=False)
    baseline = run_with_options("sharded-proc-2", tape)
    log = run_with_options("sharded-proc-2", tape, options)
    assert_subscriber_streams_match(baseline, log, f"sharded-proc-2 {options}")
    assert_scoring_savings(baseline, log, options)


def test_hibernation_policies_actually_hibernate():
    """The hibernation variants must exercise the hibernate/wake path --
    a differential pass over a tape that never hibernates proves
    nothing about it."""
    tape = generate_dedup_tape(7717)
    for options, expected in [
        (QueryScaleOptions(dedup=True), False),
        (QueryScaleOptions(dedup=True, hibernate_after=6), True),
        (QueryScaleOptions(dedup=True, max_resident=3), True),
    ]:
        log = run_with_options("ita", tape, options)
        assert log.saw_hibernation == expected, options


def test_canonical_count_tracks_distinct_sets_not_subscribers():
    tape = generate_dedup_tape(7717, pool_size=6)
    log = run_with_options("ita", tape, QueryScaleOptions(dedup=True))
    assert log.max_canonical <= 6
    assert log.max_subscribed > log.max_canonical, (
        "the tape must actually fan out duplicate subscriptions"
    )
