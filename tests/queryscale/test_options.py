"""Configuration tests for :class:`repro.queryscale.QueryScaleOptions`.

The option block must round-trip through its dictionary encoding (it is
persisted inside durable EngineSpec manifests), reject unknown keys
loudly, and validate its fields -- a typo in a stored spec must never
silently run a service without dedup or hibernation.
"""

import pytest

from repro.exceptions import ConfigurationError
from repro.queryscale import QueryScaleOptions
from repro.service import EngineSpec, WindowSpec, spec_from_name


class TestValidation:
    def test_defaults_validate(self):
        QueryScaleOptions().validate()

    @pytest.mark.parametrize("field", ["hibernate_after", "max_resident"])
    def test_rejects_negative_counts(self, field):
        with pytest.raises(ConfigurationError):
            QueryScaleOptions(**{field: -1}).validate()

    @pytest.mark.parametrize("field", ["hibernate_after", "max_resident"])
    def test_rejects_non_int_counts(self, field):
        with pytest.raises(ConfigurationError):
            QueryScaleOptions(**{field: True}).validate()

    @pytest.mark.parametrize("field", ["dedup", "compact_weights"])
    def test_rejects_non_bool_flags(self, field):
        with pytest.raises(ConfigurationError):
            QueryScaleOptions(**{field: 1}).validate()

    def test_hibernation_requires_dedup(self):
        """The hibernation indexes live on the canonical entries, so any
        hibernation policy without dedup is a configuration error."""
        with pytest.raises(ConfigurationError):
            QueryScaleOptions(dedup=False, hibernate_after=4).validate()
        with pytest.raises(ConfigurationError):
            QueryScaleOptions(dedup=False, max_resident=8).validate()

    def test_hibernation_enabled_property(self):
        assert not QueryScaleOptions().hibernation_enabled
        assert QueryScaleOptions(hibernate_after=3).hibernation_enabled
        assert QueryScaleOptions(max_resident=5).hibernation_enabled


class TestEncoding:
    @pytest.mark.parametrize(
        "options",
        [
            QueryScaleOptions(),
            QueryScaleOptions(dedup=False, compact_weights=False),
            QueryScaleOptions(hibernate_after=7, max_resident=3),
        ],
    )
    def test_round_trip(self, options):
        assert QueryScaleOptions.from_dict(options.to_dict()) == options

    def test_from_dict_rejects_unknown_keys(self):
        with pytest.raises(ConfigurationError) as excinfo:
            QueryScaleOptions.from_dict({"dedup": True, "hibernate_afterr": 4})
        assert "hibernate_afterr" in str(excinfo.value)

    def test_from_dict_rejects_non_mapping(self):
        with pytest.raises(ConfigurationError):
            QueryScaleOptions.from_dict([("dedup", True)])

    def test_from_dict_validates_decoded_values(self):
        with pytest.raises(ConfigurationError):
            QueryScaleOptions.from_dict({"hibernate_after": -2})

    def test_with_overrides(self):
        base = QueryScaleOptions()
        tuned = base.with_overrides(hibernate_after=9)
        assert tuned.hibernate_after == 9
        assert tuned.dedup == base.dedup
        assert base.hibernate_after == 0


class TestSpecIntegration:
    @pytest.mark.parametrize("name", ["ita", "sharded-ita-2", "sharded-proc-2"])
    def test_spec_round_trips_the_queryscale_block(self, name):
        spec = spec_from_name(name, window=WindowSpec.count(32)).with_overrides(
            queryscale=QueryScaleOptions(dedup=True, hibernate_after=5)
        )
        spec.validate()
        decoded = EngineSpec.from_dict(spec.to_dict())
        assert decoded.queryscale == spec.queryscale

    def test_spec_without_queryscale_omits_the_block(self):
        spec = spec_from_name("ita", window=WindowSpec.count(32))
        assert spec.queryscale is None
        assert "queryscale" not in spec.to_dict()

    def test_spec_rejects_invalid_queryscale_block(self):
        spec = spec_from_name("ita", window=WindowSpec.count(32)).with_overrides(
            queryscale=QueryScaleOptions(dedup=False, hibernate_after=2)
        )
        with pytest.raises(ConfigurationError):
            spec.validate()

    def test_spec_decode_rejects_misspelled_queryscale_key(self):
        spec = spec_from_name("ita", window=WindowSpec.count(32)).with_overrides(
            queryscale=QueryScaleOptions()
        )
        data = spec.to_dict()
        data["queryscale"] = {"dedupe": True}
        with pytest.raises(ConfigurationError):
            EngineSpec.from_dict(data)
