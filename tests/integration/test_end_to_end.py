"""End-to-end integration tests spanning the whole stack.

These exercise the realistic path a user follows -- raw text -> analyzer ->
vocabulary -> corpus -> stream -> engine -> results/alerts/snapshot -- and
assert the engines stay mutually consistent throughout.
"""

import random

import pytest

from repro import (
    Analyzer,
    ContinuousQuery,
    CountBasedWindow,
    DocumentStream,
    ITAEngine,
    InMemoryCorpus,
    KMaxNaiveEngine,
    NaiveEngine,
    OracleEngine,
    PoissonArrivalProcess,
    TimeBasedWindow,
    Vocabulary,
    snapshot_engine,
    restore_engine,
)
from repro.documents.corpus import SyntheticCorpus, SyntheticCorpusConfig
from tests.conftest import assert_same_topk


def _headline_corpus():
    analyzer = Analyzer()
    vocabulary = Vocabulary()
    texts = [
        "Central bank raises interest rates to combat inflation",
        "Tech stocks rally on strong quarterly earnings reports",
        "Oil prices climb as supply concerns mount in the market",
        "Weather forecast calls for heavy rain over the weekend",
        "Inflation data surprises markets and lifts bond yields",
        "Quarterly earnings from the bank beat analyst expectations",
        "Renewable energy investment surges amid climate concerns",
        "Local sports team clinches the championship in overtime",
        "Market volatility rises as inflation fears return",
        "Bank of England signals another interest rate decision",
    ]
    corpus = InMemoryCorpus(texts, analyzer=analyzer, vocabulary=vocabulary)
    return analyzer, vocabulary, corpus


class TestTextToResultsPipeline:
    def test_real_text_query_ranks_relevant_documents_first(self):
        analyzer, vocabulary, corpus = _headline_corpus()
        engine = ITAEngine(CountBasedWindow(10))
        query = ContinuousQuery.from_text(
            0, "inflation interest rate bank", k=3, analyzer=analyzer, vocabulary=vocabulary
        )
        engine.register_query(query)
        oracle = OracleEngine(CountBasedWindow(10))
        oracle.register_query(query)
        for streamed in DocumentStream(corpus, PoissonArrivalProcess(rate=1.0, seed=1)):
            engine.process(streamed)
            oracle.process(streamed)
        assert_same_topk(oracle.current_result(0), engine.current_result(0))
        # The top result must be an inflation/rates/bank headline, not weather/sport.
        top_doc = engine.current_result(0)[0].doc_id
        assert top_doc not in {3, 7}  # weather, sports

    def test_all_engines_agree_on_real_text_stream(self):
        analyzer, vocabulary, corpus = _headline_corpus()
        window_size = 6
        engines = {
            "ita": ITAEngine(CountBasedWindow(window_size)),
            "naive": NaiveEngine(CountBasedWindow(window_size)),
            "kmax": KMaxNaiveEngine(CountBasedWindow(window_size)),
            "oracle": OracleEngine(CountBasedWindow(window_size)),
        }
        queries = [
            ContinuousQuery.from_text(0, "inflation market", k=2, analyzer=analyzer, vocabulary=vocabulary),
            ContinuousQuery.from_text(1, "earnings bank", k=3, analyzer=analyzer, vocabulary=vocabulary),
        ]
        for engine in engines.values():
            for query in queries:
                engine.register_query(query)
        docs = list(DocumentStream(corpus, PoissonArrivalProcess(rate=1.0, seed=2)))
        for document in docs:
            for engine in engines.values():
                engine.process(document)
            for query in queries:
                for name in ("ita", "naive", "kmax"):
                    assert_same_topk(
                        engines["oracle"].current_result(query.query_id),
                        engines[name].current_result(query.query_id),
                        context=f"({name}, query {query.query_id})",
                    )


class TestLargeSyntheticStream:
    def test_all_engines_consistent_on_large_synthetic_stream(self):
        config = SyntheticCorpusConfig(dictionary_size=2_000, mean_log_length=3.5, seed=17)
        corpus = SyntheticCorpus(config)
        queries = [
            ContinuousQuery.from_term_ids(i, corpus.sample_query_terms(6), k=5)
            for i in range(15)
        ]
        window = 50
        ita = ITAEngine(CountBasedWindow(window))
        kmax = KMaxNaiveEngine(CountBasedWindow(window))
        oracle = OracleEngine(CountBasedWindow(window))
        for engine in (ita, kmax, oracle):
            for query in queries:
                engine.register_query(query)
        stream = DocumentStream(corpus, PoissonArrivalProcess(rate=200.0, seed=3), limit=300)
        for position, document in enumerate(stream):
            ita.process(document)
            kmax.process(document)
            oracle.process(document)
            if position % 25 == 0 or position > 290:
                for query in queries:
                    ref = oracle.current_result(query.query_id)
                    assert_same_topk(ref, ita.current_result(query.query_id))
                    assert_same_topk(ref, kmax.current_result(query.query_id))
        ita.check_invariants()


class TestSnapshotRoundtripWithinStream:
    def test_snapshot_midstream_then_continue(self):
        config = SyntheticCorpusConfig(dictionary_size=1_000, mean_log_length=3.0, seed=5)
        corpus = SyntheticCorpus(config)
        queries = [ContinuousQuery.from_term_ids(i, corpus.sample_query_terms(4), k=3) for i in range(8)]
        window = 30
        engine = ITAEngine(CountBasedWindow(window))
        for query in queries:
            engine.register_query(query)
        stream = DocumentStream(corpus, PoissonArrivalProcess(rate=200.0, seed=6), limit=200)
        docs = list(stream)
        for document in docs[:100]:
            engine.process(document)
        # Snapshot, restore, and verify the restored engine matches.
        restored = restore_engine(snapshot_engine(engine))
        for query in queries:
            assert_same_topk(engine.current_result(query.query_id), restored.current_result(query.query_id))
        # Continue both; they must stay in lockstep.
        for document in docs[100:]:
            engine.process(document)
            restored.process(document)
        for query in queries:
            assert_same_topk(engine.current_result(query.query_id), restored.current_result(query.query_id))


class TestTimeBasedEndToEnd:
    def test_time_window_expiry_matches_oracle(self):
        config = SyntheticCorpusConfig(dictionary_size=800, mean_log_length=3.0, seed=8)
        corpus = SyntheticCorpus(config)
        queries = [ContinuousQuery.from_term_ids(i, corpus.sample_query_terms(5), k=4) for i in range(10)]
        span = 5.0
        ita = ITAEngine(TimeBasedWindow(span))
        oracle = OracleEngine(TimeBasedWindow(span))
        for engine in (ita, oracle):
            for query in queries:
                engine.register_query(query)
        stream = DocumentStream(corpus, PoissonArrivalProcess(rate=50.0, seed=9), limit=250)
        for position, document in enumerate(stream):
            ita.process(document)
            oracle.process(document)
            if position % 20 == 0:
                for query in queries:
                    assert_same_topk(
                        oracle.current_result(query.query_id),
                        ita.current_result(query.query_id),
                    )
        ita.check_invariants()
