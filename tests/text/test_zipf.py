"""Tests for the Zipfian samplers behind the synthetic corpus."""

import pytest

from repro.text.zipf import AliasSampler, ZipfMandelbrotSampler, ZipfSampler


class TestAliasSampler:
    def test_rejects_empty_weights(self):
        with pytest.raises(ValueError):
            AliasSampler([])

    def test_rejects_negative_weights(self):
        with pytest.raises(ValueError):
            AliasSampler([1.0, -0.5])

    def test_rejects_all_zero_weights(self):
        with pytest.raises(ValueError):
            AliasSampler([0.0, 0.0])

    def test_samples_within_range(self):
        sampler = AliasSampler([1, 2, 3, 4])
        for _ in range(200):
            assert 0 <= sampler.sample() < 4

    def test_zero_weight_items_never_sampled(self):
        import random

        sampler = AliasSampler([0.0, 1.0, 0.0], rng=random.Random(1))
        assert set(sampler.sample_many(500)) == {1}

    def test_distribution_roughly_matches_weights(self):
        import random

        sampler = AliasSampler([3.0, 1.0], rng=random.Random(7))
        draws = sampler.sample_many(20_000)
        share = draws.count(0) / len(draws)
        assert 0.70 < share < 0.80  # expected 0.75


class TestZipfSampler:
    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            ZipfSampler(0)
        with pytest.raises(ValueError):
            ZipfSampler(10, exponent=-1)

    def test_reproducible_with_seed(self):
        a = ZipfSampler(100, seed=3).sample_many(50)
        b = ZipfSampler(100, seed=3).sample_many(50)
        assert a == b

    def test_head_ranks_more_frequent_than_tail(self):
        sampler = ZipfSampler(1000, exponent=1.0, seed=11)
        draws = sampler.sample_many(30_000)
        head = sum(1 for d in draws if d < 10)
        tail = sum(1 for d in draws if d >= 500)
        assert head > tail

    def test_probability_sums_to_one(self):
        sampler = ZipfSampler(50, exponent=1.2)
        total = sum(sampler.probability(rank) for rank in range(50))
        assert abs(total - 1.0) < 1e-9

    def test_probability_is_monotone_decreasing(self):
        sampler = ZipfSampler(20, exponent=1.0)
        probabilities = [sampler.probability(rank) for rank in range(20)]
        assert probabilities == sorted(probabilities, reverse=True)

    def test_probability_out_of_range(self):
        with pytest.raises(ValueError):
            ZipfSampler(10).probability(10)


class TestZipfMandelbrotSampler:
    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            ZipfMandelbrotSampler(0)
        with pytest.raises(ValueError):
            ZipfMandelbrotSampler(10, offset=-1)

    def test_offset_flattens_the_head(self):
        plain = ZipfSampler(1000, exponent=1.0, seed=5)
        flattened = ZipfMandelbrotSampler(1000, exponent=1.0, offset=10.0, seed=5)
        plain_head = sum(1 for d in plain.sample_many(20_000) if d == 0)
        flat_head = sum(1 for d in flattened.sample_many(20_000) if d == 0)
        assert flat_head < plain_head

    def test_reproducible_with_seed(self):
        a = ZipfMandelbrotSampler(200, seed=9).sample_many(30)
        b = ZipfMandelbrotSampler(200, seed=9).sample_many(30)
        assert a == b

    def test_samples_within_range(self):
        sampler = ZipfMandelbrotSampler(37, seed=1)
        assert all(0 <= r < 37 for r in sampler.sample_many(500))
