"""Tests for repro.text.tokenizer."""

import pytest

from repro.text.tokenizer import RegexTokenizer, Token, WhitespaceTokenizer, ngrams


class TestRegexTokenizer:
    def test_simple_sentence(self):
        tokenizer = RegexTokenizer()
        assert tokenizer.words("Weapons of mass destruction") == [
            "Weapons", "of", "mass", "destruction",
        ]

    def test_offsets_point_back_into_text(self):
        text = "breaking news: markets rally"
        for token in RegexTokenizer().tokenize(text):
            assert text[token.start : token.end] == token.text

    def test_apostrophes_kept_inside_words(self):
        assert RegexTokenizer().words("don't stop") == ["don't", "stop"]

    def test_hyphenated_words_split(self):
        assert RegexTokenizer().words("e-mail follow-up") == ["e", "mail", "follow", "up"]

    def test_numbers_kept_by_default(self):
        assert RegexTokenizer().words("revenue grew 42 percent in 1992") == [
            "revenue", "grew", "42", "percent", "in", "1992",
        ]

    def test_numbers_dropped_when_configured(self):
        tokenizer = RegexTokenizer(keep_numbers=False)
        assert tokenizer.words("revenue grew 42 percent") == ["revenue", "grew", "percent"]

    def test_alphanumeric_tokens_survive_keep_numbers_false(self):
        tokenizer = RegexTokenizer(keep_numbers=False)
        assert tokenizer.words("the b2b segment") == ["the", "b2b", "segment"]

    def test_min_length_filter(self):
        tokenizer = RegexTokenizer(min_length=3)
        assert tokenizer.words("a be sea") == ["sea"]

    def test_min_length_must_be_positive(self):
        with pytest.raises(ValueError):
            RegexTokenizer(min_length=0)

    def test_empty_text_yields_no_tokens(self):
        assert RegexTokenizer().tokenize("") == []

    def test_punctuation_only_yields_no_tokens(self):
        assert RegexTokenizer().words("!!! --- ...") == []

    def test_non_string_input_raises(self):
        with pytest.raises(TypeError):
            list(RegexTokenizer().iter_tokens(42))

    def test_token_lower(self):
        token = Token("Bloomberg", 0, 9)
        assert token.lower() == "bloomberg"
        assert len(token) == 9

    def test_unicode_text_does_not_crash(self):
        words = RegexTokenizer().words("café résumé stock")
        assert "stock" in words


class TestWhitespaceTokenizer:
    def test_splits_on_whitespace_only(self):
        assert WhitespaceTokenizer().words("term0001  term0002\tterm0001") == [
            "term0001", "term0002", "term0001",
        ]

    def test_offsets_are_correct(self):
        text = "alpha beta alpha"
        tokens = WhitespaceTokenizer().tokenize(text)
        assert [text[t.start : t.end] for t in tokens] == ["alpha", "beta", "alpha"]
        # the second "alpha" must map to the later occurrence
        assert tokens[2].start > tokens[1].start


class TestNgrams:
    def test_bigrams(self):
        assert list(ngrams(["a", "b", "c"], 2)) == [("a", "b"), ("b", "c")]

    def test_n_larger_than_sequence(self):
        assert list(ngrams(["a"], 3)) == []

    def test_invalid_n(self):
        with pytest.raises(ValueError):
            list(ngrams(["a"], 0))
