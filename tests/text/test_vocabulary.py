"""Tests for the term dictionary."""

import pytest

from repro.exceptions import VocabularyError
from repro.text.vocabulary import Vocabulary


class TestVocabularyBasics:
    def test_ids_are_dense_and_stable(self):
        vocab = Vocabulary()
        assert vocab.add("tower") == 0
        assert vocab.add("white") == 1
        assert vocab.add("tower") == 0
        assert len(vocab) == 2

    def test_constructor_seeds_terms(self):
        vocab = Vocabulary(["a", "b", "c"])
        assert vocab.id_of("b") == 1

    def test_id_of_unknown_raises(self):
        with pytest.raises(VocabularyError):
            Vocabulary().id_of("missing")

    def test_get_id_returns_none_for_unknown(self):
        assert Vocabulary().get_id("missing") is None

    def test_term_of_roundtrip(self):
        vocab = Vocabulary()
        term_id = vocab.add("market")
        assert vocab.term_of(term_id) == "market"

    def test_term_of_unknown_id_raises(self):
        with pytest.raises(VocabularyError):
            Vocabulary().term_of(3)

    def test_contains_and_iter(self):
        vocab = Vocabulary(["x", "y"])
        assert "x" in vocab
        assert "z" not in vocab
        assert list(vocab) == ["x", "y"]

    def test_add_all_and_to_terms(self):
        vocab = Vocabulary()
        ids = vocab.add_all(["a", "b", "a"])
        assert ids == [0, 1, 0]
        assert vocab.to_terms([1, 0]) == ["b", "a"]

    def test_items(self):
        vocab = Vocabulary(["a", "b"])
        assert dict(vocab.items()) == {"a": 0, "b": 1}


class TestFrozenVocabulary:
    def test_freeze_blocks_new_terms(self):
        vocab = Vocabulary(["known"])
        vocab.freeze()
        assert vocab.frozen
        assert vocab.add("known") == 0
        with pytest.raises(VocabularyError):
            vocab.add("unknown")


class TestDocumentFrequencies:
    def test_record_and_query(self):
        vocab = Vocabulary(["a", "b"])
        vocab.record_document_terms([0, 0, 1])
        assert vocab.document_frequency(0) == 1  # distinct per document
        vocab.record_document_terms([0])
        assert vocab.document_frequency(0) == 2
        assert vocab.document_frequency(1) == 1

    def test_forget_decrements_and_clamps(self):
        vocab = Vocabulary(["a"])
        vocab.record_document_terms([0])
        vocab.forget_document_terms([0])
        assert vocab.document_frequency(0) == 0
        # forgetting again must not go negative
        vocab.forget_document_terms([0])
        assert vocab.document_frequency(0) == 0

    def test_unknown_term_has_zero_frequency(self):
        assert Vocabulary().document_frequency(99) == 0
