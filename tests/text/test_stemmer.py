"""Tests for the from-scratch Porter stemmer."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.text.stemmer import NullStemmer, PorterStemmer


@pytest.fixture(scope="module")
def stemmer():
    return PorterStemmer()


class TestPorterStemmerKnownCases:
    """Classic examples from Porter's original paper and common IR suites."""

    @pytest.mark.parametrize(
        "word, expected",
        [
            ("caresses", "caress"),
            ("ponies", "poni"),
            ("caress", "caress"),
            ("cats", "cat"),
            ("feed", "feed"),
            ("agreed", "agre"),
            ("plastered", "plaster"),
            ("bled", "bled"),
            ("motoring", "motor"),
            ("sing", "sing"),
            ("conflated", "conflat"),
            ("troubled", "troubl"),
            ("sized", "size"),
            ("hopping", "hop"),
            ("tanned", "tan"),
            ("falling", "fall"),
            ("hissing", "hiss"),
            ("fizzed", "fizz"),
            ("failing", "fail"),
            ("filing", "file"),
            ("happy", "happi"),
            ("sky", "sky"),
            ("relational", "relat"),
            ("conditional", "condit"),
            ("rational", "ration"),
            ("valenci", "valenc"),
            ("digitizer", "digit"),
            ("operator", "oper"),
            ("feudalism", "feudal"),
            ("decisiveness", "decis"),
            ("hopefulness", "hope"),
            ("formaliti", "formal"),
            ("triplicate", "triplic"),
            ("formative", "form"),
            ("formalize", "formal"),
            ("electrical", "electr"),
            ("hopeful", "hope"),
            ("goodness", "good"),
            ("revival", "reviv"),
            ("allowance", "allow"),
            ("inference", "infer"),
            ("airliner", "airlin"),
            ("adjustable", "adjust"),
            ("defensible", "defens"),
            ("irritant", "irrit"),
            ("replacement", "replac"),
            ("adjustment", "adjust"),
            ("dependent", "depend"),
            ("adoption", "adopt"),
            ("communism", "commun"),
            ("activate", "activ"),
            ("angulariti", "angular"),
            ("homologous", "homolog"),
            ("effective", "effect"),
            ("bowdlerize", "bowdler"),
            ("probate", "probat"),
            ("rate", "rate"),
            ("cease", "ceas"),
            ("controll", "control"),
            ("roll", "roll"),
        ],
    )
    def test_known_stem(self, stemmer, word, expected):
        assert stemmer.stem(word) == expected

    def test_monitoring_family_collapses(self, stemmer):
        stems = {stemmer.stem(w) for w in ("monitor", "monitors", "monitoring", "monitored")}
        assert stems == {"monitor"}

    def test_query_and_document_forms_agree(self, stemmer):
        # "weapons" in the query must match "weapon" in a document.
        assert stemmer.stem("weapons") == stemmer.stem("weapon")


class TestPorterStemmerBehaviour:
    def test_short_words_unchanged(self, stemmer):
        assert stemmer.stem("go") == "go"
        assert stemmer.stem("at") == "at"

    def test_lowercases_input(self, stemmer):
        assert stemmer.stem("Running") == stemmer.stem("running")

    def test_non_alphabetic_returned_as_is(self, stemmer):
        assert stemmer.stem("b2b") == "b2b"
        assert stemmer.stem("1992") == "1992"

    def test_callable_protocol(self, stemmer):
        assert stemmer("walking") == stemmer.stem("walking")

    def test_stem_all(self, stemmer):
        assert stemmer.stem_all(["cats", "dogs"]) == ["cat", "dog"]

    def test_cache_returns_consistent_results(self):
        stemmer = PorterStemmer(cache_size=2)
        first = stemmer.stem("nationalization")
        # exceed the cache, then ask again
        stemmer.stem("internationalization")
        stemmer.stem("characterization")
        assert stemmer.stem("nationalization") == first

    @given(st.text(alphabet=st.characters(min_codepoint=97, max_codepoint=122), min_size=1, max_size=15))
    @settings(max_examples=200, deadline=None)
    def test_stem_never_longer_than_word(self, word):
        stemmer = PorterStemmer()
        assert len(stemmer.stem(word)) <= len(word)

    @given(st.text(alphabet=st.characters(min_codepoint=97, max_codepoint=122), min_size=1, max_size=15))
    @settings(max_examples=200, deadline=None)
    def test_stemming_is_deterministic(self, word):
        assert PorterStemmer().stem(word) == PorterStemmer().stem(word)

    @given(st.text(alphabet=st.characters(min_codepoint=97, max_codepoint=122), min_size=3, max_size=15))
    @settings(max_examples=200, deadline=None)
    def test_stem_is_nonempty_for_alpha_words(self, word):
        assert PorterStemmer().stem(word)


class TestNullStemmer:
    def test_identity(self):
        stemmer = NullStemmer()
        assert stemmer.stem("running") == "running"
        assert stemmer("Running") == "Running"
        assert stemmer.stem_all(["a", "b"]) == ["a", "b"]
