"""Tests for the analysis pipeline."""

import pytest

from repro.text.analyzer import Analyzer, AnalyzerConfig


class TestAnalyzerPipeline:
    def test_full_pipeline(self):
        analyzer = Analyzer()
        assert analyzer.analyze("Weapons of mass destruction") == ["weapon", "mass", "destruct"]

    def test_stopwords_removed(self):
        analyzer = Analyzer()
        terms = analyzer.analyze("the white tower and the black gate")
        assert "the" not in terms
        assert "and" not in terms
        assert "white" in terms

    def test_stemming_can_be_disabled(self):
        analyzer = Analyzer(AnalyzerConfig(stem=False))
        assert analyzer.analyze("monitoring markets") == ["monitoring", "markets"]

    def test_stopword_removal_can_be_disabled(self):
        analyzer = Analyzer(AnalyzerConfig(remove_stopwords=False, stem=False))
        assert "the" in analyzer.analyze("the market")

    def test_lowercase_can_be_disabled(self):
        analyzer = Analyzer(AnalyzerConfig(lowercase=False, stem=False, remove_stopwords=False))
        assert analyzer.analyze("Bloomberg Reuters") == ["Bloomberg", "Reuters"]

    def test_extra_stopwords(self):
        analyzer = Analyzer(AnalyzerConfig(extra_stopwords=("reuters",)))
        assert "reuter" not in analyzer.analyze("Reuters reports earnings")
        assert "report" in analyzer.analyze("Reuters reports earnings")

    def test_min_token_length_applied_without_stopword_removal(self):
        analyzer = Analyzer(AnalyzerConfig(remove_stopwords=False, stem=False, min_token_length=3))
        assert analyzer.analyze("a of gdp") == ["gdp"]

    def test_term_frequencies_counts_repeats(self):
        analyzer = Analyzer()
        counts = analyzer.term_frequencies("white white tower")
        assert counts == {"white": 2, "tower": 1}

    def test_term_frequencies_empty_text(self):
        assert Analyzer().term_frequencies("") == {}

    def test_query_and_document_share_dictionary_form(self):
        analyzer = Analyzer()
        # The document word "explosives" and query word "explosive" must
        # land on the same dictionary term.
        doc_terms = set(analyzer.analyze("traces of explosives found"))
        query_terms = set(analyzer.analyze("explosive"))
        assert query_terms <= doc_terms

    def test_accessors_exposed(self):
        analyzer = Analyzer()
        assert analyzer.tokenizer is not None
        assert analyzer.stopword_filter is not None

    def test_numbers_configurable(self):
        with_numbers = Analyzer(AnalyzerConfig(stem=False))
        without_numbers = Analyzer(AnalyzerConfig(stem=False, keep_numbers=False))
        assert "1992" in with_numbers.analyze("march 1992 report")
        assert "1992" not in without_numbers.analyze("march 1992 report")
