"""Tests for repro.text.stopwords."""

import pytest

from repro.text.stopwords import DEFAULT_STOPWORDS, StopwordFilter


class TestDefaultStopwords:
    def test_common_function_words_present(self):
        for word in ("the", "and", "of", "is", "with", "from"):
            assert word in DEFAULT_STOPWORDS

    def test_content_words_absent(self):
        for word in ("weapons", "market", "tower", "explosives"):
            assert word not in DEFAULT_STOPWORDS

    def test_is_a_frozenset(self):
        assert isinstance(DEFAULT_STOPWORDS, frozenset)


class TestStopwordFilter:
    def test_filters_default_stopwords(self):
        keeper = StopwordFilter()
        assert keeper.filter(["the", "market", "and", "rally"]) == ["market", "rally"]

    def test_case_insensitive(self):
        keeper = StopwordFilter()
        assert keeper.is_stopword("The")
        assert keeper.is_stopword("AND")

    def test_min_length_drops_short_tokens(self):
        keeper = StopwordFilter(min_length=3)
        assert keeper.filter(["go", "gdp", "up"]) == ["gdp"]

    def test_min_length_zero_keeps_single_letters(self):
        keeper = StopwordFilter(stopwords=[], min_length=0)
        assert keeper.filter(["e", "mail"]) == ["e", "mail"]

    def test_negative_min_length_rejected(self):
        with pytest.raises(ValueError):
            StopwordFilter(min_length=-1)

    def test_extra_stopwords_merged(self):
        keeper = StopwordFilter(extra=["reuters"])
        assert keeper.is_stopword("Reuters")
        assert keeper.is_stopword("the")

    def test_custom_list_replaces_default(self):
        keeper = StopwordFilter(stopwords=["foo"])
        assert keeper.is_stopword("foo")
        assert not keeper.is_stopword("the")

    def test_contains_protocol(self):
        keeper = StopwordFilter()
        assert "the" in keeper
        assert "tower" not in keeper

    def test_iter_filter_is_lazy_and_equivalent(self):
        keeper = StopwordFilter()
        terms = ["the", "white", "tower", "of", "london"]
        assert list(keeper.iter_filter(terms)) == keeper.filter(terms)

    def test_len_reports_stopword_count(self):
        keeper = StopwordFilter(stopwords=["a", "b", "c"])
        assert len(keeper) == 3

    def test_returns_original_casing(self):
        keeper = StopwordFilter()
        assert keeper.filter(["White", "THE", "Tower"]) == ["White", "Tower"]
