"""Reference-vocabulary tests for the Porter stemmer.

The original Porter algorithm has well-known test vocabularies; this module
exercises the stemmer against a broad set of inflected English words and
asserts the expected morphological collapsing, catching regressions in the
step rules beyond the spot-checks in test_stemmer.py.
"""

import pytest

from repro.text.stemmer import PorterStemmer


@pytest.fixture(scope="module")
def stemmer():
    return PorterStemmer()


# Families of words that must collapse to a single stem.
WORD_FAMILIES = [
    ["connect", "connected", "connecting", "connection", "connections"],
    ["relate", "related", "relating"],
    ["process", "processes", "processing", "processed"],
    ["argue", "argued", "argues", "arguing"],
    ["generalize", "generalization", "generalizations"],
    ["happy", "happier", "happiest"],  # note: only the -y rules, not comparatives
]


class TestStemFamilies:
    @pytest.mark.parametrize("family", WORD_FAMILIES[:5])
    def test_family_collapses_to_one_stem(self, stemmer, family):
        stems = {stemmer.stem(word) for word in family}
        assert len(stems) == 1, f"{family} -> {stems}"


class TestStepRulesRegression:
    @pytest.mark.parametrize(
        "word, expected",
        [
            ("generalization", "gener"),
            ("oscillators", "oscil"),
            ("communication", "commun"),
            ("additional", "addit"),
            ("differently", "differ"),
            ("happiness", "happi"),
            ("vietnamization", "vietnam"),
            ("predication", "predic"),
            ("operating", "oper"),
            ("reproduce", "reproduc"),
            ("repository", "repositori"),
            ("sensational", "sensat"),
        ],
    )
    def test_specific_stems(self, stemmer, word, expected):
        assert stemmer.stem(word) == expected

    def test_idempotent_on_stems(self, stemmer):
        # Stemming an already-stemmed word must be a fixed point.
        for word in ("connect", "oper", "relat", "happi", "gener"):
            assert stemmer.stem(word) == word

    def test_plural_singular_agreement(self, stemmer):
        pairs = [("cats", "cat"), ("ponies", "poni"), ("caresses", "caress"), ("flies", "fli")]
        for plural, expected in pairs:
            assert stemmer.stem(plural) == expected


class TestStemmerStability:
    def test_common_words_reach_a_fixed_point(self, stemmer):
        # The Porter algorithm is applied once and is not universally
        # idempotent (e.g. "conditionally" -> "condition" -> "condit"), but
        # for most inflected words the single-pass stem is already a fixed
        # point.
        words = ["monitoring", "relational", "generalizations", "connecting"]
        for word in words:
            once = stemmer.stem(word)
            assert stemmer.stem(once) == once

    def test_case_and_whitespace_insensitivity(self, stemmer):
        assert stemmer.stem("RUNNING") == stemmer.stem("running")
