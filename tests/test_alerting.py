"""Tests for the result-change subscription layer."""

import pytest

from repro.alerting import Alert, AlertDispatcher
from repro.core.engine import ITAEngine
from repro.documents.window import CountBasedWindow, TimeBasedWindow
from tests.conftest import make_document, make_query


def build_dispatcher(window=None):
    engine = ITAEngine(window if window is not None else CountBasedWindow(3))
    engine.register_query(make_query(0, {1: 1.0}, k=1))
    engine.register_query(make_query(1, {2: 1.0}, k=1))
    return AlertDispatcher(engine), engine


class TestSubscription:
    def test_requires_change_tracking(self):
        engine = ITAEngine(CountBasedWindow(3), track_changes=False)
        with pytest.raises(ValueError):
            AlertDispatcher(engine)

    def test_global_subscriber_receives_all_changes(self):
        dispatcher, _ = build_dispatcher()
        seen = []
        dispatcher.subscribe(seen.append)
        dispatcher.process(make_document(0, {1: 0.9}, arrival_time=0.0))
        dispatcher.process(make_document(1, {2: 0.8}, arrival_time=1.0))
        assert [alert.query_id for alert in seen] == [0, 1]

    def test_scoped_subscriber_only_its_query(self):
        dispatcher, _ = build_dispatcher()
        seen = []
        dispatcher.subscribe(seen.append, query_id=1)
        dispatcher.process(make_document(0, {1: 0.9}, arrival_time=0.0))  # query 0 only
        assert seen == []
        dispatcher.process(make_document(1, {2: 0.8}, arrival_time=1.0))  # query 1
        assert [alert.query_id for alert in seen] == [1]

    def test_unsubscribe_stops_delivery(self):
        dispatcher, _ = build_dispatcher()
        seen = []
        unsubscribe = dispatcher.subscribe(seen.append)
        dispatcher.process(make_document(0, {1: 0.9}, arrival_time=0.0))
        unsubscribe()
        dispatcher.process(make_document(1, {2: 0.8}, arrival_time=1.0))
        assert len(seen) == 1

    def test_unsubscribe_scoped(self):
        dispatcher, _ = build_dispatcher()
        seen = []
        unsubscribe = dispatcher.subscribe(seen.append, query_id=0)
        unsubscribe()
        dispatcher.process(make_document(0, {1: 0.9}, arrival_time=0.0))
        assert seen == []

    def test_delivered_counter(self):
        dispatcher, _ = build_dispatcher()
        dispatcher.subscribe(lambda alert: None)
        dispatcher.subscribe(lambda alert: None, query_id=0)
        dispatcher.process(make_document(0, {1: 0.9}, arrival_time=0.0))
        # one global + one scoped to query 0
        assert dispatcher.delivered == 2


class TestAlertContent:
    def test_alert_carries_change_and_document(self):
        dispatcher, _ = build_dispatcher()
        seen = []
        dispatcher.subscribe(seen.append)
        document = make_document(0, {1: 0.9}, arrival_time=5.0)
        dispatcher.process(document)
        alert = seen[0]
        assert isinstance(alert, Alert)
        assert alert.document.doc_id == 0
        assert [e.doc_id for e in alert.change.entered] == [0]

    def test_displacement_reported_in_alert(self):
        dispatcher, _ = build_dispatcher()
        seen = []
        dispatcher.subscribe(seen.append, query_id=0)
        dispatcher.process(make_document(0, {1: 0.5}, arrival_time=0.0))
        dispatcher.process(make_document(1, {1: 0.9}, arrival_time=1.0))
        last = seen[-1]
        assert [e.doc_id for e in last.change.entered] == [1]
        assert [e.doc_id for e in last.change.left] == [0]


class TestEventForwarding:
    def test_process_many(self):
        dispatcher, engine = build_dispatcher()
        seen = []
        dispatcher.subscribe(seen.append)
        documents = [make_document(i, {1: 0.1 + 0.1 * i}, arrival_time=float(i)) for i in range(3)]
        dispatcher.process_many(documents)
        assert len(seen) >= 1
        assert engine.counters.arrivals == 3

    def test_advance_time_dispatches_expiry_alerts(self):
        dispatcher, engine = build_dispatcher(window=TimeBasedWindow(span=5.0))
        seen = []
        dispatcher.subscribe(seen.append)
        dispatcher.process(make_document(0, {1: 0.9}, arrival_time=0.0))
        seen.clear()
        dispatcher.advance_time(10.0)  # document 0 expires -> query 0 result empties
        assert any(alert.query_id == 0 for alert in seen)

    def test_no_alert_when_result_unchanged(self):
        dispatcher, _ = build_dispatcher()
        seen = []
        dispatcher.subscribe(seen.append)
        dispatcher.process(make_document(0, {1: 0.9}, arrival_time=0.0))
        seen.clear()
        # A document sharing no terms with any query changes nothing.
        dispatcher.process(make_document(1, {99: 0.9}, arrival_time=1.0))
        assert seen == []
