"""Storage-backend parity on the differential conformance tapes.

The op tapes of :mod:`tests.conformance.test_differential_fuzz` are
replayed twice per engine kind -- once on the default ``"bisect"``
storage backend and once on ``"columnar"`` (the array-backed columns of
:mod:`repro.index.columnar`) -- and the runs must be indistinguishable.
The columnar backend is a *representation* change: every probe, descent,
roll-up and eviction must touch the same values in the same order, so the
contract here is strictly tighter than the cross-kind conformance suite:

* **top-k snapshots** are exact at every observation point, on the
  tie-heavy tape included (same kind, same algorithm -- tie handling must
  be reproduced bit for bit, not merely up to equal scores);
* **change streams** carry the same per-op content (the batched ingest
  path may re-order change records within one event by query id, the same
  latitude the cross-kind suite documents); each record's entered/left
  sequences compare exactly;
* **per-query alert streams** are bit-identical;
* **operation counters** are bit-identical at every observation point --
  the columnar backend must not change *what* work the algorithm does,
  only how the postings are laid out;
* **service snapshots** hold the same logical state at every checkpoint;
  only the engine-config envelope (which records the storage backend
  itself) may differ, and restoring a snapshot onto the *other* backend
  reproduces the same results.

The out-of-process cluster is covered on one tape (worker processes are
expensive to spawn; the in-process kinds cover all three tapes).
"""

from __future__ import annotations

import copy
from typing import Any

import pytest

from repro.service import MonitoringService
from tests.conformance.test_differential_fuzz import (
    TAPES,
    as_multiset,
    digest_results,
    generate_tape,
    run_sync,
)

SHARDED = "sharded-ita-3"
PROC = "sharded-proc-2"


def scrub_storage(node: Any) -> Any:
    """``node`` with every ``"storage"`` key removed, recursively.

    The storage backend is recorded in the service spec and in every
    engine (and shard) config of a snapshot; it is the *one* field that
    legitimately differs between the two runs.  Everything else --
    documents, queries, window, clock, vocabulary -- must not.
    """
    if isinstance(node, dict):
        return {
            key: scrub_storage(value)
            for key, value in node.items()
            if key != "storage"
        }
    if isinstance(node, list):
        return [scrub_storage(value) for value in node]
    return node


def assert_storage_parity(engine_name: str, seed: int, tie_heavy: bool) -> None:
    tape = generate_tape(seed, tie_heavy)
    bisect_log = run_sync(engine_name, tape)
    columnar_log = run_sync(engine_name, tape, storage="columnar")

    context = f"({engine_name}, seed {seed})"
    assert len(columnar_log.digests) == len(bisect_log.digests), context
    assert len(columnar_log.changes) == len(bisect_log.changes), context
    assert len(columnar_log.snapshots) == len(bisect_log.snapshots), context

    # Top-k snapshots: exact, ties included.
    assert columnar_log.digests == bisect_log.digests, (
        f"top-k diverged between storage backends {context}"
    )

    # Change streams: same per-op content.
    for index, changes in enumerate(bisect_log.changes):
        assert as_multiset(changes) == as_multiset(columnar_log.changes[index]), (
            f"change content diverged at ingest op {index} {context}"
        )

    # Alert streams: bit-identical per query.
    assert dict(columnar_log.alerts) == dict(bisect_log.alerts), context

    # Counters: bit-identical -- same probes, same scores, same roll-ups.
    assert columnar_log.counters == bisect_log.counters, (
        f"operation counters diverged between storage backends {context}"
    )

    # Snapshots: same logical state outside the recorded backend name.
    assert [scrub_storage(s) for s in columnar_log.snapshots] == [
        scrub_storage(s) for s in bisect_log.snapshots
    ], f"snapshot state diverged between storage backends {context}"


@pytest.mark.parametrize("seed,tie_heavy", TAPES)
def test_ita_columnar_is_bit_identical_on_tapes(seed: int, tie_heavy: bool) -> None:
    assert_storage_parity("ita", seed, tie_heavy)


@pytest.mark.parametrize("seed,tie_heavy", TAPES)
def test_sharded_columnar_is_bit_identical_on_tapes(seed: int, tie_heavy: bool) -> None:
    assert_storage_parity(SHARDED, seed, tie_heavy)


def test_proc_columnar_is_bit_identical_on_one_tape() -> None:
    seed, tie_heavy = TAPES[0]
    assert_storage_parity(PROC, seed, tie_heavy)


def test_snapshot_restores_across_storage_backends() -> None:
    """A bisect snapshot restored as columnar (and vice versa) reproduces
    the same results: persistence is logical, so the storage backend is a
    restore-time choice, not a property of the data."""
    seed, tie_heavy = TAPES[0]
    tape = generate_tape(seed, tie_heavy, num_ops=120)
    for source, target in (("bisect", "columnar"), ("columnar", "bisect")):
        log = run_sync("ita", tape, storage=source)
        assert log.snapshots, "tape produced no checkpoints"
        snapshot = log.snapshots[-1]
        converted = copy.deepcopy(snapshot)
        converted["spec"]["storage"] = target
        restored = MonitoringService.restore(converted)
        try:
            assert restored.engine.index.backend.name == target
            restored.engine.index.check_invariants()
            reference = MonitoringService.restore(snapshot)
            try:
                assert digest_results(restored.results()) == digest_results(
                    reference.results()
                )
            finally:
                reference.close()
        finally:
            restored.close()
