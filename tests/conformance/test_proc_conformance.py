"""Differential conformance of the out-of-process cluster.

The op tapes of :mod:`tests.conformance.test_differential_fuzz` are
replayed against ``"sharded-proc-3"`` -- three worker *processes* behind
the framed RPC of :mod:`repro.net` -- and the run must be indistinguishable
from the in-process engines:

* **top-k snapshots** at every observation point are exact against the
  single ITA engine (sharding preserves exact results, ties included,
  and JSON float round-trips are exact -- nothing may drift over the
  wire);
* **change streams** carry the same per-op content as ITA and are
  bit-identical (content *and* order) to the in-process sharded cluster,
  whose merge order the coordinator reimplements;
* **per-query alert streams** are bit-identical to ITA's;
* **service snapshots** at every checkpoint hold the same logical state
  (documents, queries, window, clock, vocabulary) as ITA's -- the
  envelopes differ only in the engine spec they carry;
* **operation counters** are bit-identical to the in-process sharded
  cluster's (same shard count, same placement: moving a shard into its
  own process must not change what work it does).  Counter equality is
  asserted on restore-free replays and up to the first checkpoint on the
  full tapes: a snapshot *restore* legitimately recomputes derived state
  (threshold descents) with different work per restore strategy, exactly
  why the original fuzz suite never compares counters across kinds.

A second test SIGKILLs one worker mid-tape: the supervisor must restart
it, replay its WAL, and finish the tape with every stream still
bit-identical -- crash recovery is invisible to the client.
"""

from __future__ import annotations

import os
import signal
import time
from typing import Any, Dict, List, Tuple

import pytest

from repro.query.query import ContinuousQuery
from repro.service import MonitoringService
from tests.conformance.test_differential_fuzz import (
    TAPES,
    RunLog,
    _spec,
    assert_digests_agree,
    as_multiset,
    generate_tape,
    normalize_alert,
    normalize_change,
    digest_results,
    run_sync,
)

PROC = "sharded-proc-3"
SHARDED = "sharded-ita-3"


def strip_envelope(snapshot: Dict[str, Any]) -> Dict[str, Any]:
    """The engine-kind-independent part of a service snapshot.

    The spec and the engine's self-reported name legitimately differ
    between kinds; the *data* -- documents, queries, window, clock,
    vocabulary, id sequence -- must not.
    """
    engine = dict(snapshot["engine"])
    engine.pop("engine", None)  # the engine kind name
    engine.pop("config", None)  # per-kind construction knobs
    return {
        "vocabulary": snapshot["vocabulary"],
        "clock": snapshot["clock"],
        "next_doc_id": snapshot["next_doc_id"],
        "engine": engine,
    }


@pytest.mark.parametrize("seed,tie_heavy", TAPES)
def test_proc_cluster_is_bit_identical_on_tapes(seed: int, tie_heavy: bool) -> None:
    tape = generate_tape(seed, tie_heavy)

    reference = run_sync("ita", tape)
    sharded = run_sync(SHARDED, tape)
    proc = run_sync(PROC, tape)

    assert len(proc.digests) == len(reference.digests)
    assert len(proc.changes) == len(reference.changes)
    assert len(proc.snapshots) == len(reference.snapshots)

    # 1. Top-k snapshots: exact against ITA at every observation point.
    for index, digest in enumerate(proc.digests):
        assert_digests_agree(
            reference.digests[index],
            digest,
            exact=True,
            context=f"(sharded-proc, observation {index}, seed {seed})",
        )

    # 2. Change streams: bit-identical to the in-process cluster (same
    #    merge order) and the same per-op content as ITA.
    assert proc.changes == sharded.changes
    for index, changes in enumerate(reference.changes):
        assert as_multiset(changes) == as_multiset(proc.changes[index]), (
            f"change content diverged at ingest op {index} (seed {seed})"
        )

    # 3. Per-query alert streams: bit-identical to ITA's.
    assert dict(proc.alerts) == dict(reference.alerts)

    # 4. Service snapshots: same logical state as ITA at every checkpoint.
    assert [strip_envelope(s) for s in proc.snapshots] == [
        strip_envelope(s) for s in reference.snapshots
    ]

    # 5. Counters: bit-identical to the in-process sharded cluster at
    #    every observation before the first snapshot restore (restores
    #    recompute derived state; see the module docstring).
    observes_before_restore = 0
    for op in tape:
        if op[0] == "checkpoint":
            break
        if op[0] == "observe":
            observes_before_restore += 1
    assert proc.counters[:observes_before_restore] == (
        sharded.counters[:observes_before_restore]
    )


def test_counters_match_in_process_cluster_without_restores() -> None:
    """Full-tape counter bit-identity on a restore-free replay."""
    seed, tie_heavy = TAPES[1]
    tape = generate_tape(seed, tie_heavy)
    sharded = run_sync_with_kill(SHARDED, tape, kill_at=-1)
    proc = run_sync_with_kill(PROC, tape, kill_at=-1)
    assert len(proc.counters) >= 10
    assert proc.counters == sharded.counters
    assert proc.digests == sharded.digests


def run_sync_with_kill(
    engine_name: str, tape: List[Tuple], kill_at: int, storage: str = "bisect"
) -> RunLog:
    """Replay ``tape`` like ``run_sync`` but SIGKILL worker 0 at one op.

    No checkpoint/restore ops here -- the point is that the *same*
    cluster object survives the crash via supervised restart + WAL
    replay, so checkpoint ops are replayed as observations instead.
    """
    log = RunLog()
    service = MonitoringService(_spec(engine_name, storage))
    handles: Dict[int, Any] = {}

    def drain_alerts() -> None:
        for query_id, handle in handles.items():
            log.alerts[query_id].extend(
                normalize_alert(alert) for alert in handle.changes()
            )

    try:
        for index, op in enumerate(tape):
            if index == kill_at:
                victim = service.engine.worker_pids()[0]
                os.kill(victim, signal.SIGKILL)
                time.sleep(0.1)
            kind = op[0]
            if kind == "subscribe":
                _, query_id, weights, k = op
                handles[query_id] = service.subscribe(
                    ContinuousQuery(query_id=query_id, weights=weights, k=k)
                )
            elif kind == "unsubscribe":
                _, query_id = op
                drain_alerts()
                handles.pop(query_id).unsubscribe()
            elif kind == "ingest":
                _, documents = op
                changes = service.ingest(documents)
                log.changes.append([normalize_change(change) for change in changes])
            elif kind in ("observe", "checkpoint"):
                drain_alerts()
                log.digests.append(digest_results(service.results()))
                log.counters.append(service.counters.as_dict())
            else:  # pragma: no cover - tape generator bug
                raise AssertionError(f"unknown op {kind!r}")
        log.restarts = getattr(service.engine, "total_restarts", 0)
    finally:
        service.close()
    return log


@pytest.mark.parametrize("storage", ["bisect", "columnar"])
def test_sigkill_mid_tape_is_invisible_after_wal_replay(storage: str) -> None:
    """Both storage backends: the restarted worker replays its WAL through
    the normal event path, so the columnar backend must come back
    bit-identical too."""
    seed, tie_heavy = TAPES[0]
    tape = generate_tape(seed, tie_heavy)
    kill_at = len(tape) // 2

    reference = run_sync_with_kill("ita", tape, kill_at=-1, storage=storage)
    killed = run_sync_with_kill(PROC, tape, kill_at=kill_at, storage=storage)

    assert killed.restarts >= 1, "the kill never triggered a supervised restart"
    assert len(killed.digests) == len(reference.digests)
    for index, digest in enumerate(killed.digests):
        assert_digests_agree(
            reference.digests[index],
            digest,
            exact=True,
            context=f"(post-kill observation {index})",
        )
    for index, changes in enumerate(reference.changes):
        assert as_multiset(changes) == as_multiset(killed.changes[index]), (
            f"change content diverged at ingest op {index} after the kill"
        )
    assert dict(killed.alerts) == dict(reference.alerts)
