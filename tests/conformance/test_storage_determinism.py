"""Property-based float/tie determinism: bisect vs columnar backends.

Hypothesis drives both storage backends with *adversarial* weight
workloads -- exact ties (many documents and queries sharing the same
grid values), 1-ulp-apart neighbours (``math.nextafter`` pairs, where
any re-ordering of float operations shows up immediately), and
magnitudes nine to twelve orders apart (where a changed summation order
in scoring or tau maintenance loses low bits immediately).  Magnitudes
that overflow or underflow outright are excluded: a product that rounds
to exactly ``0.0`` or ``inf`` breaks the *engine's* own invariants on
every backend alike, which is outside this suite's contract.

The contract here is *indistinguishability*, so the suite deliberately
does not call ``ITAQueryState.check_invariants``: that checker encodes
real-arithmetic implications (e.g. "score >= tau implies some weight at
or above its threshold") which 1-ulp workloads can break identically on
every backend -- see the eviction fast-path note in ROADMAP.md.  What
must hold regardless is that both backends land in the same state, bit
for bit, and the structural index invariants (sorted postings, tree
consistency), which are asserted.

For every generated workload the reference is the sequential bisect
engine, and both the sequential and the batched columnar engine must
reproduce it **bit-identically**:

* per-query top-k results: document ids in order and the IEEE-754 bit
  pattern of every score,
* per-query threshold vectors and the ``tau`` certificate, bit for bit,
* the full operation-counter block (same probes, scores, roll-up steps,
  refills -- the backends must do the *same work*, not just reach the
  same answer),
* change streams: exactly (content and order) for the sequential
  columnar run; as per-event content for the batched run (the batch
  kernel re-orders within one event by query id, the latitude the
  conformance suite documents).
"""

from __future__ import annotations

import math
import struct
from typing import Dict, List, Tuple

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.engine import ITAEngine
from repro.documents.document import CompositionList, Document, StreamedDocument
from repro.documents.window import CountBasedWindow
from repro.query.query import ContinuousQuery

WINDOW_SIZE = 8
NUM_TERMS = 10

#: tie-heavy grid values, 1-ulp-apart neighbours, and values small enough
#: that mixed sums cancel their low bits (but whose pairwise products stay
#: comfortably normal -- no underflow-to-zero, no overflow)
ADVERSARIAL_WEIGHTS = [
    0.25,
    0.5,
    0.5,  # doubled odds of the exact-tie value
    1.0,
    math.nextafter(1.0, 2.0),
    0.1,
    math.nextafter(0.1, 1.0),
    0.3,
    math.nextafter(0.3, 0.0),
    1e-9,
    1e-12,
]

weight_strategy = st.sampled_from(ADVERSARIAL_WEIGHTS)
terms_strategy = st.dictionaries(
    st.integers(min_value=0, max_value=NUM_TERMS - 1),
    weight_strategy,
    min_size=1,
    max_size=4,
)


def _bits(value: float) -> str:
    return struct.pack(">d", value).hex()


def _run(
    storage: str,
    batch: int,
    documents: List[Dict[int, float]],
    queries: List[Tuple[Dict[int, float], int]],
):
    """Replay the workload; return (per-event changes, final state)."""
    engine = ITAEngine(CountBasedWindow(WINDOW_SIZE), storage=storage)
    for query_id, (weights, k) in enumerate(queries, start=1):
        engine.register_query(ContinuousQuery(query_id=query_id, weights=weights, k=k))
    events = [
        StreamedDocument(Document(index + 1, CompositionList(weights)), float(index))
        for index, weights in enumerate(documents)
    ]
    stream = []
    if batch:
        for start in range(0, len(events), batch):
            stream.extend(engine.process_batch_events(events[start : start + batch]))
    else:
        stream = [engine.process(event) for event in events]
    changes = [
        [
            (
                change.query_id,
                tuple((e.doc_id, _bits(e.score)) for e in change.entered),
                tuple((e.doc_id, _bits(e.score)) for e in change.left),
            )
            for change in event_changes
        ]
        for event_changes in stream
    ]
    engine.index.check_invariants()
    state = {}
    for query_id, query_state in sorted(engine._states.items()):
        state[query_id] = (
            tuple((e.doc_id, _bits(e.score)) for e in query_state.top_k()),
            tuple(sorted((t, _bits(v)) for t, v in query_state.thresholds.items())),
            _bits(query_state.tau),
        )
    return changes, state, dict(sorted(engine.counters.as_dict().items()))


@given(
    documents=st.lists(terms_strategy, min_size=6, max_size=28),
    queries=st.lists(
        st.tuples(terms_strategy, st.integers(min_value=1, max_value=4)),
        min_size=1,
        max_size=5,
    ),
    batch=st.sampled_from([3, 7, 16]),
)
@settings(max_examples=60, deadline=None)
def test_columnar_reproduces_bisect_bit_for_bit(documents, queries, batch):
    ref_changes, ref_state, ref_counters = _run("bisect", 0, documents, queries)

    # Sequential columnar: the strictest bar -- everything exact,
    # change order included.
    col_changes, col_state, col_counters = _run("columnar", 0, documents, queries)
    assert col_changes == ref_changes
    assert col_state == ref_state
    assert col_counters == ref_counters

    # Batched columnar: state and counters exact; change content exact
    # per event, order within one event free.
    batch_changes, batch_state, batch_counters = _run(
        "columnar", batch, documents, queries
    )
    assert batch_state == ref_state
    assert batch_counters == ref_counters
    assert len(batch_changes) == len(ref_changes)
    for expected, actual in zip(ref_changes, batch_changes):
        assert sorted(expected) == sorted(actual)


@given(
    shared=terms_strategy,
    extra=st.lists(terms_strategy, min_size=4, max_size=12),
    k=st.integers(min_value=1, max_value=3),
)
@settings(max_examples=25, deadline=None)
def test_all_tied_documents_resolve_identically(shared, extra, k):
    """Every document identical to the query: scores tie exactly, so the
    top-k outcome is decided purely by the deterministic tie-break --
    which both backends must implement identically."""
    documents = [dict(shared)] * 6 + extra
    queries = [(dict(shared), k)]
    _, ref_state, ref_counters = _run("bisect", 0, documents, queries)
    for batch in (0, 5):
        _, state, counters = _run("columnar", batch, documents, queries)
        assert state == ref_state
        assert counters == ref_counters
