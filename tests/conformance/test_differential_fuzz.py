"""Randomized differential conformance: every engine kind, one op tape.

A seeded generator produces a *tape* of interleaved service operations --
subscribe / unsubscribe / single-document ingest / batched ingest /
snapshot+restore checkpoints / observation points -- and the tape is
replayed, identically, against:

* the ITA engine, the Naive and k_max-Naive baselines and the sharded
  cluster, each behind a synchronous :class:`~repro.service.MonitoringService`,
* the sharded cluster behind the *asynchronous* façade
  (:class:`~repro.service.AsyncMonitoringService`), whose per-shard worker
  pipeline must be a pure execution-strategy change.

What must agree:

* **top-k snapshots** at every observation point -- exactly across all
  kinds on tie-free tapes; up to ties at equal scores on the tie-heavy
  tape (scores always compare exactly);
* **change streams** -- exactly (content and order) between the sharded
  cluster's sync and async runs; as per-op content between ITA and the
  cluster (the merged stream re-orders within one event by query id); as
  per-query alert streams across every kind on tie-free tapes;
* **service snapshots** at every checkpoint -- bit-identical between the
  cluster's sync and async runs;
* **operation counters** -- bit-identical between the cluster's sync and
  async runs (the pipeline must not change what work is done, only where
  it runs).

Counters are *not* compared across kinds: computing fewer scores than
Naive is the paper's point, not a bug.  The tape sizes satisfy the
repository's conformance budget: >= 3 seeds x >= 500 ops each.
"""

from __future__ import annotations

import asyncio
import random
from collections import defaultdict
from typing import Any, Dict, List, Optional, Tuple

import pytest

from repro.query.query import ContinuousQuery
from repro.service import (
    AsyncMonitoringService,
    MonitoringService,
    WindowSpec,
    spec_from_name,
)
from tests.conftest import make_document

#: (seed, tie_heavy): two tie-free tapes (continuous weights, so document
#: ids compare exactly across engine kinds) and one tie-heavy tape drawn
#: from the discrete grid, which exercises every engine's tie handling.
TAPES = [(1101, False), (2203, False), (3307, True)]

NUM_OPS = 520
WINDOW_SIZE = 24
NUM_TERMS = 16
SHARDED = "sharded-ita-3"
ENGINE_NAMES = ["ita", "naive", "naive-kmax", SHARDED]

#: async pipeline shape: several workers, small batches and queues so the
#: tape crosses many batch boundaries and hits backpressure
ASYNC_KW = dict(max_workers=3, queue_depth=2, batch_size=7)

TIE_GRID = [0.1, 0.2, 0.25, 0.5, 0.75, 1.0]


# --------------------------------------------------------------------------- #
# tape generation (pure data, fully determined by the seed)
# --------------------------------------------------------------------------- #
def generate_tape(seed: int, tie_heavy: bool, num_ops: int = NUM_OPS) -> List[Tuple]:
    rng = random.Random(seed)

    def weight() -> float:
        if tie_heavy:
            return rng.choice(TIE_GRID)
        return round(rng.uniform(0.05, 1.0), 6)

    def weights(max_terms: int, min_terms: int = 0) -> Dict[int, float]:
        count = rng.randint(min_terms, max_terms)
        terms = rng.sample(range(NUM_TERMS), count) if count else []
        return {term: weight() for term in terms}

    tape: List[Tuple] = []
    next_query_id = 0
    next_doc_id = 0
    clock = 0.0
    active: List[int] = []

    def make_docs(count: int) -> List:
        nonlocal next_doc_id, clock
        documents = []
        for _ in range(count):
            clock += rng.choice([0.1, 0.5, 1.0])
            documents.append(
                make_document(next_doc_id, weights(5), arrival_time=round(clock, 6))
            )
            next_doc_id += 1
        return documents

    # A couple of standing queries and a little history before the random
    # interleaving starts, so early observations are non-trivial.
    for _ in range(2):
        tape.append(("subscribe", next_query_id, weights(4, min_terms=1), rng.randint(1, 4)))
        active.append(next_query_id)
        next_query_id += 1
    tape.append(("ingest", make_docs(8)))

    while len(tape) < num_ops:
        roll = rng.random()
        if roll < 0.35:
            tape.append(("ingest", make_docs(1)))
        elif roll < 0.60:
            tape.append(("ingest", make_docs(rng.randint(2, 11))))
        elif roll < 0.74:
            tape.append(("subscribe", next_query_id, weights(4, min_terms=1), rng.randint(1, 4)))
            active.append(next_query_id)
            next_query_id += 1
        elif roll < 0.82 and len(active) > 1:
            tape.append(("unsubscribe", active.pop(rng.randrange(len(active)))))
        elif roll < 0.96:
            tape.append(("observe",))
        else:
            tape.append(("checkpoint",))
    tape.append(("observe",))
    return tape


# --------------------------------------------------------------------------- #
# normalisation helpers
# --------------------------------------------------------------------------- #
def _entry_key(entry) -> Tuple[int, float]:
    return (entry.doc_id, round(entry.score, 9))


def normalize_change(change) -> Tuple:
    return (
        change.query_id,
        tuple(_entry_key(entry) for entry in change.entered),
        tuple(_entry_key(entry) for entry in change.left),
    )


def normalize_alert(alert) -> Tuple:
    document = alert.document.doc_id if alert.document is not None else None
    return (*normalize_change(alert.change), document)


def digest_results(results: Dict[int, Any]) -> Dict[int, Tuple]:
    return {
        query_id: tuple(_entry_key(entry) for entry in result)
        for query_id, result in results.items()
    }


class RunLog:
    """Everything one backend produced while replaying the tape."""

    def __init__(self) -> None:
        #: per ingest op: the normalized flattened change list, in order
        self.changes: List[List[Tuple]] = []
        #: per observe op: {query_id: ((doc_id, score), ...)}
        self.digests: List[Dict[int, Tuple]] = []
        #: per observe op: the engine's counter block
        self.counters: List[Dict[str, int]] = []
        #: per checkpoint: the raw service snapshot (JSON-compatible dict)
        self.snapshots: List[Dict[str, Any]] = []
        #: per query: the normalized alert stream its handle delivered
        self.alerts: Dict[int, List[Tuple]] = defaultdict(list)


# --------------------------------------------------------------------------- #
# tape replay: synchronous and asynchronous backends
# --------------------------------------------------------------------------- #
def _spec(engine_name: str, storage: Optional[str] = None):
    spec = spec_from_name(engine_name, window=WindowSpec.count(WINDOW_SIZE))
    if storage is not None:
        spec = spec.with_overrides(storage=storage)
    return spec


def run_sync(
    engine_name: str, tape: List[Tuple], storage: Optional[str] = None
) -> RunLog:
    log = RunLog()
    service = MonitoringService(_spec(engine_name, storage))
    handles: Dict[int, Any] = {}

    def drain_alerts() -> None:
        for query_id, handle in handles.items():
            log.alerts[query_id].extend(
                normalize_alert(alert) for alert in handle.changes()
            )

    for op in tape:
        kind = op[0]
        if kind == "subscribe":
            _, query_id, weights, k = op
            handles[query_id] = service.subscribe(
                ContinuousQuery(query_id=query_id, weights=weights, k=k)
            )
        elif kind == "unsubscribe":
            _, query_id = op
            drain_alerts()
            handles.pop(query_id).unsubscribe()
        elif kind == "ingest":
            _, documents = op
            changes = service.ingest(documents)
            log.changes.append([normalize_change(change) for change in changes])
        elif kind == "observe":
            drain_alerts()
            log.digests.append(digest_results(service.results()))
            log.counters.append(service.counters.as_dict())
        elif kind == "checkpoint":
            drain_alerts()
            snapshot = service.snapshot()
            log.snapshots.append(snapshot)
            service.close()
            service = MonitoringService.restore(snapshot)
            handles = {query_id: service.handle(query_id) for query_id in handles}
        else:  # pragma: no cover - tape generator bug
            raise AssertionError(f"unknown op {kind!r}")
    return log


def run_async(engine_name: str, tape: List[Tuple]) -> RunLog:
    async def replay() -> RunLog:
        log = RunLog()
        service = await AsyncMonitoringService(_spec(engine_name), **ASYNC_KW).start()
        handles: Dict[int, Any] = {}

        async def drain_alerts() -> None:
            await service.drain()
            for query_id, handle in handles.items():
                log.alerts[query_id].extend(
                    normalize_alert(alert) for alert in handle.changes()
                )

        for op in tape:
            kind = op[0]
            if kind == "subscribe":
                _, query_id, weights, k = op
                handles[query_id] = await service.subscribe(
                    ContinuousQuery(query_id=query_id, weights=weights, k=k)
                )
            elif kind == "unsubscribe":
                _, query_id = op
                await drain_alerts()
                await service.unsubscribe(query_id)
                handles.pop(query_id)
            elif kind == "ingest":
                _, documents = op
                changes = await service.ingest(documents)
                log.changes.append([normalize_change(change) for change in changes])
            elif kind == "observe":
                await drain_alerts()
                log.digests.append(digest_results(await service.results()))
                log.counters.append(service.counters.as_dict())
            elif kind == "checkpoint":
                await drain_alerts()
                snapshot = await service.snapshot()
                log.snapshots.append(snapshot)
                await service.close()
                service = await AsyncMonitoringService.restore(snapshot, **ASYNC_KW)
                handles = {
                    query_id: await service.handle(query_id) for query_id in handles
                }
            else:  # pragma: no cover - tape generator bug
                raise AssertionError(f"unknown op {kind!r}")
        await service.aclose()
        return log

    return asyncio.run(replay())


# --------------------------------------------------------------------------- #
# comparisons
# --------------------------------------------------------------------------- #
def assert_digests_agree(
    reference: Dict[int, Tuple],
    candidate: Dict[int, Tuple],
    exact: bool,
    context: str,
) -> None:
    assert sorted(reference) == sorted(candidate), f"query sets differ {context}"
    for query_id, expected in reference.items():
        actual = candidate[query_id]
        if exact:
            assert actual == expected, (
                f"top-k diverged for query {query_id} {context}: "
                f"{expected} != {actual}"
            )
            continue
        # Tie-tolerant: the score sequences must match exactly; each
        # reported document must achieve a score some reference document
        # achieves (only relaxes the comparison at exact ties).
        expected_scores = [score for _, score in expected]
        actual_scores = [score for _, score in actual]
        assert expected_scores == actual_scores, (
            f"score sequences differ for query {query_id} {context}"
        )
        allowed = set(expected_scores)
        assert all(score in allowed for _, score in actual), context


def as_multiset(changes: List[Tuple]) -> List[Tuple]:
    return sorted(changes)


@pytest.mark.parametrize("seed,tie_heavy", TAPES)
def test_differential_fuzz(seed: int, tie_heavy: bool) -> None:
    tape = generate_tape(seed, tie_heavy)
    assert len(tape) >= 500

    logs = {name: run_sync(name, tape) for name in ENGINE_NAMES}
    logs["sharded-async"] = run_async(SHARDED, tape)

    reference = logs["ita"]
    sharded = logs[SHARDED]
    sharded_async = logs["sharded-async"]

    # Every backend saw the same number of observation/ingest/checkpoint
    # points -- a guard against a backend silently skipping tape ops.
    for name, log in logs.items():
        assert len(log.digests) == len(reference.digests), name
        assert len(log.changes) == len(reference.changes), name
        assert len(log.snapshots) == len(reference.snapshots), name

    # 1. Top-k snapshots agree across every kind at every observation.
    for name, log in logs.items():
        exact = (not tie_heavy) or name in (SHARDED, "sharded-async")
        for index, digest in enumerate(log.digests):
            assert_digests_agree(
                reference.digests[index],
                digest,
                exact=exact,
                context=f"(backend {name}, observation {index}, seed {seed})",
            )

    # 2a. Sync and async cluster runs are bit-identical: ordered change
    #     streams, per-query alert streams, snapshots, and counters.
    assert sharded_async.changes == sharded.changes
    assert dict(sharded_async.alerts) == dict(sharded.alerts)
    assert sharded_async.snapshots == sharded.snapshots
    assert sharded_async.counters == sharded.counters

    # 2b. ITA vs the cluster: same per-op change content (the merged
    #     stream re-orders within one event by query id) and, per query,
    #     the exact same alert stream -- sharding one ITA engine into
    #     three must not change any query's reported trajectory.
    for index, changes in enumerate(reference.changes):
        assert as_multiset(changes) == as_multiset(sharded.changes[index]), (
            f"change content diverged at ingest op {index} (seed {seed})"
        )
    assert dict(sharded.alerts) == dict(reference.alerts)

    # 2c. On tie-free tapes the baselines must report the exact same
    #     per-op change content and per-query alert streams as ITA.
    if not tie_heavy:
        for name in ("naive", "naive-kmax"):
            log = logs[name]
            for index, changes in enumerate(reference.changes):
                assert as_multiset(changes) == as_multiset(log.changes[index]), (
                    f"change content diverged at ingest op {index} "
                    f"(backend {name}, seed {seed})"
                )
            assert dict(log.alerts) == dict(reference.alerts), name


def test_tape_generation_is_deterministic() -> None:
    """Same seed, same tape -- the suite's reproducibility contract."""
    first = generate_tape(1101, False)
    second = generate_tape(1101, False)
    assert first == second
    ops = [op[0] for op in first]
    # The tape must actually interleave every op kind.
    for kind in ("subscribe", "unsubscribe", "ingest", "observe", "checkpoint"):
        assert kind in ops, f"tape never exercises {kind!r}"


def test_tapes_cover_required_budget() -> None:
    """>= 3 seeds x >= 500 ops, as required by the conformance budget."""
    assert len(TAPES) >= 3
    for seed, tie_heavy in TAPES:
        assert len(generate_tape(seed, tie_heavy)) >= 500
