"""Batch-vs-sequential equivalence: ``process_batch`` must be a pure
performance optimisation.

The batched hot path (:meth:`repro.core.engine.ITAEngine.process_batch_events`
and the cluster's batch fan-out) inlines and fuses the per-event pipeline;
these tests pin down that it is *bit-identical* to feeding the same stream
through ``process()`` one document at a time:

* identical final top-k snapshots for every query (exact doc ids and
  scores, not merely tie-tolerant),
* an identical per-event result-change stream,
* identical operation counters (the batched path accumulates them in
  locals and flushes once per batch -- the flush must be exact),
* engine invariants intact afterwards.

Covered engines: ita (with and without roll-up / round-robin probing),
naive, naive-kmax, and the sharded cluster, over count- and time-based
windows, with several chunkings including size 1 and the whole stream.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines.naive import NaiveEngine
from repro.core.engine import ITAEngine
from repro.documents.window import CountBasedWindow, WindowSpec
from repro.query.query import ContinuousQuery
from repro.service.spec import spec_from_name
from tests.conftest import StreamCase, assert_same_topk, make_document

ENGINE_NAMES = ["ita", "naive", "naive-kmax", "sharded-ita-2"]


def build_pair(name, window_size, queries):
    """Two identically-specced engines with the same queries installed."""
    engines = []
    for _ in range(2):
        engine = spec_from_name(name, window=WindowSpec.count(window_size)).build()
        for query in queries:
            engine.register_query(
                ContinuousQuery(query_id=query.query_id, weights=query.weights, k=query.k)
            )
        engines.append(engine)
    return engines


def chunked(documents, size):
    return [documents[start : start + size] for start in range(0, len(documents), size)]


def assert_identical_results(sequential, batched, queries, context):
    for query in queries:
        expected = sequential.current_result(query.query_id)
        actual = batched.current_result(query.query_id)
        assert expected == actual, (
            f"top-k diverged for query {query.query_id} {context}: "
            f"{expected} != {actual}"
        )


class TestAllEnginesSeededStreams:
    @pytest.mark.parametrize("engine_name", ENGINE_NAMES)
    @pytest.mark.parametrize("seed", [1, 2, 3])
    @pytest.mark.parametrize("chunk_size", [1, 7, 1000])
    def test_final_snapshots_and_change_streams_match(self, engine_name, seed, chunk_size):
        case = StreamCase(seed=seed, num_documents=120)
        window = 12 + seed
        sequential, batched = build_pair(engine_name, window, case.queries)

        sequential_changes = []
        for document in case.documents:
            sequential_changes.extend(sequential.process(document))
        batched_changes = []
        for chunk in chunked(case.documents, chunk_size):
            batched_changes.extend(batched.process_batch(chunk))

        assert_identical_results(
            sequential, batched, case.queries,
            f"(engine {engine_name}, seed {seed}, chunk {chunk_size})",
        )
        assert sequential_changes == batched_changes, (
            f"change streams diverged (engine {engine_name}, seed {seed}, "
            f"chunk {chunk_size})"
        )
        validate = getattr(batched, "check_invariants", None)
        if validate is not None:
            validate()

    @pytest.mark.parametrize("engine_name", ENGINE_NAMES)
    def test_counters_flush_exactly(self, engine_name):
        case = StreamCase(seed=9, num_documents=90)
        sequential, batched = build_pair(engine_name, 10, case.queries)
        for document in case.documents:
            sequential.process(document)
        for chunk in chunked(case.documents, 16):
            batched.process_batch(chunk)
        assert sequential.counters.as_dict() == batched.counters.as_dict()


class TestITAVariants:
    """The ablation configurations ride the same batched loop."""

    @pytest.mark.parametrize(
        "options",
        [
            {"enable_rollup": False},
            {"probe_order": "round_robin"},
            {"track_changes": False},
        ],
    )
    def test_variant_batched_matches_sequential(self, options):
        case = StreamCase(seed=5, num_documents=100)
        engines = []
        for _ in range(2):
            from repro.core.descent import ProbeOrder

            engine = ITAEngine(
                CountBasedWindow(11),
                track_changes=options.get("track_changes", True),
                enable_rollup=options.get("enable_rollup", True),
                probe_order=ProbeOrder(options.get("probe_order", "weighted")),
            )
            for query in case.queries:
                engine.register_query(
                    ContinuousQuery(query_id=query.query_id, weights=query.weights, k=query.k)
                )
            engines.append(engine)
        sequential, batched = engines
        for document in case.documents:
            sequential.process(document)
        for chunk in chunked(case.documents, 13):
            batched.process_batch(chunk)
        assert_identical_results(sequential, batched, case.queries, f"({options})")
        for query in case.queries:
            seq_state = sequential.state_of(query.query_id)
            bat_state = batched.state_of(query.query_id)
            assert seq_state.thresholds == bat_state.thresholds
            assert seq_state.tau == bat_state.tau
            assert seq_state.results.as_dict() == bat_state.results.as_dict()
        batched.check_invariants()

    def test_time_based_window_batched_matches_sequential(self):
        from repro.documents.window import TimeBasedWindow

        case = StreamCase(seed=31, num_documents=110)
        engines = []
        for _ in range(2):
            engine = ITAEngine(TimeBasedWindow(15.0))
            for query in case.queries:
                engine.register_query(
                    ContinuousQuery(query_id=query.query_id, weights=query.weights, k=query.k)
                )
            engines.append(engine)
        sequential, batched = engines
        sequential_changes = []
        for document in case.documents:
            sequential_changes.extend(sequential.process(document))
        batched_changes = []
        for chunk in chunked(case.documents, 9):
            batched_changes.extend(batched.process_batch(chunk))
        assert_identical_results(sequential, batched, case.queries, "(time window)")
        assert sequential_changes == batched_changes
        batched.check_invariants()


class TestDifferentialAgainstNaive:
    """The batched ITA path must still agree with the naive baseline."""

    @pytest.mark.parametrize("seed", [41, 42, 43])
    def test_batched_ita_matches_naive(self, seed):
        case = StreamCase(seed=seed, num_documents=130)
        window = 14
        ita = ITAEngine(CountBasedWindow(window))
        naive = NaiveEngine(CountBasedWindow(window))
        for query in case.queries:
            ita.register_query(
                ContinuousQuery(query_id=query.query_id, weights=query.weights, k=query.k)
            )
            naive.register_query(
                ContinuousQuery(query_id=query.query_id, weights=query.weights, k=query.k)
            )
        for chunk in chunked(case.documents, 10):
            ita.process_batch(chunk)
            naive.process_batch(chunk)
            for query in case.queries:
                assert_same_topk(
                    naive.current_result(query.query_id),
                    ita.current_result(query.query_id),
                    context=f"(seed {seed}, query {query.query_id})",
                )
        ita.check_invariants()


class TestPropertyBased:
    @given(
        queries=st.lists(
            st.tuples(
                st.dictionaries(
                    st.integers(min_value=0, max_value=9),
                    st.sampled_from([0.1, 0.2, 0.25, 0.5, 0.75, 1.0]),
                    min_size=1,
                    max_size=3,
                ),
                st.integers(min_value=1, max_value=3),
            ),
            min_size=1,
            max_size=4,
        ),
        documents=st.lists(
            st.dictionaries(
                st.integers(min_value=0, max_value=9),
                st.sampled_from([0.1, 0.2, 0.25, 0.5, 0.75, 1.0]),
                min_size=0,
                max_size=4,
            ),
            min_size=1,
            max_size=30,
        ),
        window_size=st.integers(min_value=1, max_value=8),
        chunk_size=st.integers(min_value=1, max_value=11),
    )
    @settings(max_examples=80, deadline=None)
    def test_ita_batched_is_bit_identical(self, queries, documents, window_size, chunk_size):
        sequential = ITAEngine(CountBasedWindow(window_size))
        batched = ITAEngine(CountBasedWindow(window_size))
        for query_id, (weights, k) in enumerate(queries):
            sequential.register_query(ContinuousQuery(query_id, weights, k=k))
            batched.register_query(ContinuousQuery(query_id, weights, k=k))
        streamed = [
            make_document(doc_id, weights, arrival_time=float(doc_id))
            for doc_id, weights in enumerate(documents)
        ]
        sequential_changes = []
        for document in streamed:
            sequential_changes.extend(sequential.process(document))
        batched_changes = []
        for chunk in chunked(streamed, chunk_size):
            batched_changes.extend(batched.process_batch(chunk))
        assert sequential_changes == batched_changes
        for query_id in range(len(queries)):
            assert (
                sequential.current_result(query_id) == batched.current_result(query_id)
            )
            seq_state = sequential.state_of(query_id)
            bat_state = batched.state_of(query_id)
            assert seq_state.thresholds == bat_state.thresholds
            assert seq_state.results.as_dict() == bat_state.results.as_dict()
        assert sequential.counters.as_dict() == batched.counters.as_dict()
        batched.check_invariants()
