"""Tests for the ITAEngine monitoring server."""

import pytest

from repro.core.engine import ITAEngine
from repro.documents.window import CountBasedWindow, TimeBasedWindow
from repro.exceptions import DuplicateQueryError, UnknownQueryError
from tests.conftest import make_document, make_query


@pytest.fixture
def engine():
    engine = ITAEngine(CountBasedWindow(3))
    engine.register_query(make_query(0, {11: 0.4, 20: 0.6}, k=2))
    engine.register_query(make_query(1, {30: 1.0}, k=1))
    return engine


class TestQueryManagement:
    def test_register_computes_initial_result_over_current_window(self):
        engine = ITAEngine(CountBasedWindow(5))
        engine.process(make_document(0, {11: 0.9}, arrival_time=0.0))
        engine.process(make_document(1, {11: 0.5}, arrival_time=1.0))
        engine.register_query(make_query(0, {11: 1.0}, k=1))
        assert [e.doc_id for e in engine.current_result(0)] == [0]

    def test_duplicate_registration_rejected(self, engine):
        with pytest.raises(DuplicateQueryError):
            engine.register_query(make_query(0, {5: 1.0}, k=1))

    def test_unregister_removes_state_and_tree_entries(self, engine):
        engine.unregister_query(0)
        assert 0 not in engine.query_ids()
        with pytest.raises(UnknownQueryError):
            engine.current_result(0)
        tree = engine.index.existing_tree(11)
        assert tree is None or 0 not in tree

    def test_state_of_unknown_query(self, engine):
        with pytest.raises(UnknownQueryError):
            engine.state_of(99)

    def test_query_ids(self, engine):
        assert sorted(engine.query_ids()) == [0, 1]


class TestProcessing:
    def test_results_update_on_arrivals(self, engine):
        engine.process(make_document(0, {11: 0.5, 20: 0.5}, arrival_time=0.0))
        engine.process(make_document(1, {20: 0.9}, arrival_time=1.0))
        top = engine.current_result(0)
        assert [e.doc_id for e in top] == [1, 0]

    def test_window_expiration_removes_old_documents_from_results(self, engine):
        # window of 3: document 0 expires when document 3 arrives
        for i, weights in enumerate([{11: 0.9}, {11: 0.5}, {11: 0.4}, {11: 0.3}]):
            engine.process(make_document(i, weights, arrival_time=float(i)))
        top_ids = [e.doc_id for e in engine.current_result(0)]
        assert 0 not in top_ids
        assert top_ids == [1, 2]

    def test_unrelated_documents_do_not_touch_queries(self, engine):
        before = engine.counters.scores_computed
        engine.process(make_document(0, {99: 1.0}, arrival_time=0.0))
        assert engine.counters.scores_computed == before

    def test_result_changes_reported_only_for_affected_queries(self, engine):
        changes = engine.process(make_document(0, {30: 0.9}, arrival_time=0.0))
        assert [c.query_id for c in changes] == [1]
        assert [e.doc_id for e in changes[0].entered] == [0]
        assert changes[0].left == ()

    def test_result_change_reports_displacement(self, engine):
        engine.process(make_document(0, {30: 0.5}, arrival_time=0.0))
        changes = engine.process(make_document(1, {30: 0.9}, arrival_time=1.0))
        change = next(c for c in changes if c.query_id == 1)
        assert [e.doc_id for e in change.entered] == [1]
        assert [e.doc_id for e in change.left] == [0]

    def test_no_change_reported_when_topk_unchanged(self, engine):
        engine.process(make_document(0, {30: 0.9}, arrival_time=0.0))
        changes = engine.process(make_document(1, {30: 0.1}, arrival_time=1.0))
        assert [c for c in changes if c.query_id == 1] == []

    def test_track_changes_disabled(self):
        engine = ITAEngine(CountBasedWindow(3), track_changes=False)
        engine.register_query(make_query(0, {11: 1.0}, k=1))
        assert engine.process(make_document(0, {11: 0.9}, arrival_time=0.0)) == []
        assert [e.doc_id for e in engine.current_result(0)] == [0]

    def test_process_many(self, engine):
        documents = [
            make_document(i, {11: 0.5 + 0.01 * i}, arrival_time=float(i)) for i in range(5)
        ]
        engine.process_many(documents)
        assert len(engine.window) == 3
        assert engine.counters.arrivals == 5
        assert engine.counters.expirations == 2

    def test_current_results_returns_every_query(self, engine):
        engine.process(make_document(0, {11: 0.5, 30: 0.5}, arrival_time=0.0))
        results = engine.current_results()
        assert set(results.keys()) == {0, 1}

    def test_counters_track_postings(self, engine):
        engine.process(make_document(0, {11: 0.5, 20: 0.5, 99: 0.5}, arrival_time=0.0))
        assert engine.counters.postings_inserted == 3
        for i in range(1, 4):
            engine.process(make_document(i, {50: 0.5}, arrival_time=float(i)))
        assert engine.counters.postings_deleted == 3  # document 0 expired

    def test_engine_invariants_after_random_burst(self, engine):
        import random

        rng = random.Random(0)
        for i in range(60):
            terms = rng.sample([11, 20, 30, 40, 50], rng.randint(0, 3))
            weights = {t: round(rng.uniform(0.05, 1.0), 3) for t in terms}
            engine.process(make_document(i, weights, arrival_time=float(i)))
        engine.check_invariants()


class TestTimeBasedWindows:
    def test_advance_time_expires_documents_and_updates_results(self):
        engine = ITAEngine(TimeBasedWindow(span=10.0))
        engine.register_query(make_query(0, {11: 1.0}, k=1))
        engine.process(make_document(0, {11: 0.9}, arrival_time=0.0))
        engine.process(make_document(1, {11: 0.5}, arrival_time=5.0))
        assert [e.doc_id for e in engine.current_result(0)] == [0]
        changes = engine.advance_time(11.0)
        assert [e.doc_id for e in engine.current_result(0)] == [1]
        change = next(c for c in changes if c.query_id == 0)
        assert [e.doc_id for e in change.left] == [0]

    def test_arrival_can_expire_many_documents(self):
        engine = ITAEngine(TimeBasedWindow(span=2.0))
        engine.register_query(make_query(0, {11: 1.0}, k=2))
        for i in range(4):
            engine.process(make_document(i, {11: 0.5}, arrival_time=float(i) * 0.1))
        engine.process(make_document(9, {11: 0.9}, arrival_time=50.0))
        assert [e.doc_id for e in engine.current_result(0)] == [9]
        assert len(engine.window) == 1
