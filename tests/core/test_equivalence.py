"""End-to-end equivalence: ITA must report the same results as the oracle.

The oracle recomputes every query's top-k from scratch after every event by
scanning the whole window, so it is correct by construction.  ITA (and the
baselines, tested in tests/baselines/) must agree with it after every single
event of any stream -- up to ties at equal scores, where any document
achieving the tied score is acceptable.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines.oracle import OracleEngine
from repro.core.engine import ITAEngine
from repro.documents.window import CountBasedWindow, TimeBasedWindow
from repro.query.query import ContinuousQuery
from tests.conftest import StreamCase, assert_same_topk, make_document


WEIGHT_GRID = st.sampled_from([0.1, 0.2, 0.25, 0.5, 0.75, 1.0])
TERM_IDS = st.integers(min_value=0, max_value=9)


class TestEquivalenceHypothesis:
    @given(
        queries=st.lists(
            st.tuples(
                st.dictionaries(TERM_IDS, WEIGHT_GRID, min_size=1, max_size=3),
                st.integers(min_value=1, max_value=3),
            ),
            min_size=1,
            max_size=4,
        ),
        documents=st.lists(
            st.dictionaries(TERM_IDS, WEIGHT_GRID, min_size=0, max_size=4),
            min_size=1,
            max_size=35,
        ),
        window_size=st.integers(min_value=1, max_value=8),
    )
    @settings(max_examples=100, deadline=None)
    def test_ita_matches_oracle_after_every_event(self, queries, documents, window_size):
        ita = ITAEngine(CountBasedWindow(window_size))
        oracle = OracleEngine(CountBasedWindow(window_size))
        for query_id, (weights, k) in enumerate(queries):
            ita.register_query(ContinuousQuery(query_id, weights, k=k))
            oracle.register_query(ContinuousQuery(query_id, weights, k=k))
        for doc_id, weights in enumerate(documents):
            document = make_document(doc_id, weights, arrival_time=float(doc_id))
            ita.process(document)
            oracle.process(document)
            for query_id in range(len(queries)):
                assert_same_topk(
                    oracle.current_result(query_id),
                    ita.current_result(query_id),
                    context=f"(query {query_id}, after document {doc_id})",
                )


class TestEquivalenceSeededStreams:
    @pytest.mark.parametrize("seed", [1, 2, 3, 4, 5])
    def test_count_based_window_long_stream(self, seed):
        case = StreamCase(seed=seed, num_documents=150)
        window = 10 + seed
        ita = ITAEngine(CountBasedWindow(window))
        oracle = OracleEngine(CountBasedWindow(window))
        for query in case.queries:
            ita.register_query(query)
            oracle.register_query(query)
        for position, document in enumerate(case.documents):
            ita.process(document)
            oracle.process(document)
            if position % 7 == 0 or position >= len(case.documents) - 10:
                for query in case.queries:
                    assert_same_topk(
                        oracle.current_result(query.query_id),
                        ita.current_result(query.query_id),
                        context=f"(seed {seed}, query {query.query_id}, event {position})",
                    )

    @pytest.mark.parametrize("seed", [11, 12, 13])
    def test_time_based_window_long_stream(self, seed):
        case = StreamCase(seed=seed, num_documents=120)
        span = 20.0
        ita = ITAEngine(TimeBasedWindow(span))
        oracle = OracleEngine(TimeBasedWindow(span))
        for query in case.queries:
            ita.register_query(query)
            oracle.register_query(query)
        for position, document in enumerate(case.documents):
            ita.process(document)
            oracle.process(document)
            if position % 5 == 0:
                for query in case.queries:
                    assert_same_topk(
                        oracle.current_result(query.query_id),
                        ita.current_result(query.query_id),
                        context=f"(seed {seed}, query {query.query_id}, event {position})",
                    )

    def test_queries_registered_mid_stream(self):
        case = StreamCase(seed=99, num_documents=100)
        ita = ITAEngine(CountBasedWindow(15))
        oracle = OracleEngine(CountBasedWindow(15))
        half = len(case.queries) // 2
        for query in case.queries[:half]:
            ita.register_query(query)
            oracle.register_query(query)
        for position, document in enumerate(case.documents):
            if position == 40:
                for query in case.queries[half:]:
                    ita.register_query(query)
                    oracle.register_query(query)
            ita.process(document)
            oracle.process(document)
            if position >= 40 and position % 6 == 0:
                for query in case.queries:
                    assert_same_topk(
                        oracle.current_result(query.query_id),
                        ita.current_result(query.query_id),
                        context=f"(query {query.query_id}, event {position})",
                    )

    def test_synthetic_corpus_stream_matches_oracle(self):
        """Equivalence on the realistic synthetic-corpus workload."""
        from repro.documents.corpus import SyntheticCorpus, SyntheticCorpusConfig
        from repro.documents.stream import FixedRateArrivalProcess, DocumentStream

        corpus = SyntheticCorpus(SyntheticCorpusConfig(dictionary_size=300, mean_log_length=3.0, seed=21))
        queries = [
            ContinuousQuery.from_term_ids(query_id, corpus.sample_query_terms(4), k=5)
            for query_id in range(10)
        ]
        ita = ITAEngine(CountBasedWindow(40))
        oracle = OracleEngine(CountBasedWindow(40))
        for query in queries:
            ita.register_query(query)
            oracle.register_query(query)
        stream = DocumentStream(corpus, FixedRateArrivalProcess(rate=10.0), limit=200)
        for position, document in enumerate(stream):
            ita.process(document)
            oracle.process(document)
            if position % 20 == 0 or position > 190:
                for query in queries:
                    assert_same_topk(
                        oracle.current_result(query.query_id),
                        ita.current_result(query.query_id),
                        context=f"(query {query.query_id}, event {position})",
                    )
        ita.check_invariants()
