"""Directed tests for the per-query ITA state: arrivals, roll-up, expirations,
refill -- the mechanics of Section III-B of the paper."""

import pytest

from repro.core.ita import ITAQueryState
from repro.index.inverted_index import InvertedIndex
from repro.query.query import ContinuousQuery
from tests.conftest import make_document


def build_state(documents, weights, k):
    index = InvertedIndex()
    for document in documents:
        index.insert_document(document)
    query = ContinuousQuery(0, weights, k=k)
    state = ITAQueryState(query, index)
    state.initialise()
    return index, state


@pytest.fixture
def scenario():
    """Same two-term scenario as in test_descent (see its docstring)."""
    documents = [
        make_document(1, {11: 0.9}, arrival_time=1.0),
        make_document(2, {11: 0.8, 20: 0.5}, arrival_time=2.0),
        make_document(3, {20: 0.9}, arrival_time=3.0),
        make_document(4, {11: 0.5, 20: 0.1}, arrival_time=4.0),
        make_document(5, {11: 0.3}, arrival_time=5.0),
    ]
    return build_state(documents, {11: 0.4, 20: 0.6}, k=2)


class TestInitialisation:
    def test_initial_topk_and_thresholds(self, scenario):
        index, state = scenario
        assert [e.doc_id for e in state.top_k()] == [2, 3]
        assert state.s_k() == pytest.approx(0.54)
        assert state.thresholds == pytest.approx({11: 0.5, 20: 0.5})
        assert state.tau == pytest.approx(0.5)

    def test_thresholds_registered_in_trees(self, scenario):
        index, state = scenario
        assert index.threshold_tree(11).threshold_of(0) == pytest.approx(0.5)
        assert index.threshold_tree(20).threshold_of(0) == pytest.approx(0.5)

    def test_invariants_hold_after_initialisation(self, scenario):
        index, state = scenario
        state.check_invariants()

    def test_detach_removes_tree_entries(self, scenario):
        index, state = scenario
        state.detach()
        assert 0 not in index.threshold_tree(11)
        assert 0 not in index.threshold_tree(20)


class TestArrivalHandling:
    def test_arrival_that_enters_topk_rolls_up_thresholds(self, scenario):
        index, state = scenario
        arrival = make_document(6, {11: 0.7, 20: 0.6}, arrival_time=6.0)
        index.insert_document(arrival)
        state.handle_arrival(arrival)

        assert [e.doc_id for e in state.top_k()] == [6, 2]
        assert state.s_k() == pytest.approx(0.62)
        # Roll-up lifts theta_A twice (0.5 -> 0.7 -> 0.8); a third step would
        # push tau above the new S_k and is rejected.
        assert state.thresholds[11] == pytest.approx(0.8)
        assert state.thresholds[20] == pytest.approx(0.5)
        assert state.tau == pytest.approx(0.62)
        # The threshold trees must reflect the roll-up.
        assert index.threshold_tree(11).threshold_of(0) == pytest.approx(0.8)
        state.check_invariants()

    def test_arrival_below_topk_is_kept_as_unverified(self, scenario):
        index, state = scenario
        arrival = make_document(6, {11: 0.6}, arrival_time=6.0)  # score 0.24 < S_k
        index.insert_document(arrival)
        state.handle_arrival(arrival)
        assert [e.doc_id for e in state.top_k()] == [2, 3]
        # kept in R for later maintenance, exactly like unverified documents
        # of the initial search
        assert 6 in state.results
        state.check_invariants()

    def test_arrival_with_zero_score_is_ignored(self, scenario):
        index, state = scenario
        arrival = make_document(6, {77: 0.9}, arrival_time=6.0)
        index.insert_document(arrival)
        state.handle_arrival(arrival)
        assert 6 not in state.results
        state.check_invariants()

    def test_rollup_counter_increments(self, scenario):
        index, state = scenario
        arrival = make_document(6, {11: 0.7, 20: 0.6}, arrival_time=6.0)
        index.insert_document(arrival)
        state.handle_arrival(arrival)
        assert state.counters.rollup_steps == 2

    def test_rollup_evicts_documents_below_all_thresholds(self):
        # Single-term query, k=1: d_a is the initial result; when a better
        # document arrives the threshold rolls up above d_a's weight and
        # d_a must leave R (the paper's d7 in Figure 2).
        documents = [
            make_document(1, {11: 0.5}, arrival_time=1.0),
            make_document(2, {11: 0.4}, arrival_time=2.0),
        ]
        index, state = build_state(documents, {11: 1.0}, k=1)
        assert [e.doc_id for e in state.top_k()] == [1]

        arrival = make_document(3, {11: 0.6}, arrival_time=3.0)
        index.insert_document(arrival)
        state.handle_arrival(arrival)

        assert [e.doc_id for e in state.top_k()] == [3]
        assert state.thresholds[11] == pytest.approx(0.6)
        assert 1 not in state.results  # evicted: below the rolled-up threshold
        assert state.counters.result_evictions >= 1
        state.check_invariants()


class TestExpirationHandling:
    def test_expiration_of_unverified_document_only_removes_it(self, scenario):
        index, state = scenario
        index.remove_document(1)  # d1 is in R but not in the top-2
        state.handle_expiration(1)
        assert 1 not in state.results
        assert [e.doc_id for e in state.top_k()] == [2, 3]
        assert state.counters.refills == 0
        state.check_invariants()

    def test_expiration_of_topk_document_triggers_refill(self, scenario):
        index, state = scenario
        index.remove_document(2)
        state.handle_expiration(2)
        assert [e.doc_id for e in state.top_k()] == [3, 1]
        state.check_invariants()

    def test_expiration_of_unknown_document_is_ignored(self, scenario):
        index, state = scenario
        # d4 was never covered by the query's thresholds.
        index.remove_document(4)
        state.handle_expiration(4)
        assert [e.doc_id for e in state.top_k()] == [2, 3]
        state.check_invariants()

    def test_refill_lowers_thresholds_and_updates_trees(self, scenario):
        index, state = scenario
        index.remove_document(2)
        state.handle_expiration(2)
        # Refill resumed the search below the recorded thresholds.
        assert state.thresholds[11] <= 0.5
        assert index.threshold_tree(11).threshold_of(0) == pytest.approx(state.thresholds[11])
        assert state.counters.refills == 1

    def test_sequence_of_expirations_down_to_empty(self, scenario):
        index, state = scenario
        for doc_id in [2, 3, 1, 4, 5]:
            index.remove_document(doc_id)
            state.handle_expiration(doc_id)
            state.check_invariants()
        assert state.top_k() == []
        assert state.tau == 0.0

    def test_interleaved_arrivals_and_expirations(self, scenario):
        index, state = scenario
        arrival = make_document(6, {11: 0.7, 20: 0.6}, arrival_time=6.0)
        index.insert_document(arrival)
        state.handle_arrival(arrival)
        index.remove_document(6)
        state.handle_expiration(6)
        # Back to the original top-2 once the newcomer leaves.
        assert [e.doc_id for e in state.top_k()] == [2, 3]
        state.check_invariants()
