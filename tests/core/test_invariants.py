"""Property-based tests of the ITA invariants.

These drive the full engine with randomly generated streams of documents
(random weights drawn from a small grid, so ties happen) and assert, after
every event, the structural invariants documented in DESIGN.md:

* INV-COVER  -- every valid document strictly above a local threshold in
  some query-term list is in R with its exact score;
* INV-REACH  -- every document in R is at or above a local threshold in at
  least one query-term list (so its expiration will be routed to the query);
* tau consistency, threshold-tree consistency, and the correctness of the
  reported top-k against a full scan.

The assertions themselves live in ``ITAQueryState.check_invariants`` and
``ITAEngine.check_invariants``; these tests generate adversarial inputs.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.engine import ITAEngine
from repro.documents.window import CountBasedWindow, TimeBasedWindow
from repro.query.query import ContinuousQuery
from tests.conftest import make_document


WEIGHT_GRID = st.sampled_from([0.1, 0.2, 0.25, 0.5, 0.75, 1.0])
TERM_IDS = st.integers(min_value=0, max_value=9)


def document_strategy():
    return st.dictionaries(TERM_IDS, WEIGHT_GRID, min_size=0, max_size=4)


def query_strategy():
    return st.builds(
        lambda weights, k: (weights, k),
        st.dictionaries(TERM_IDS, WEIGHT_GRID, min_size=1, max_size=3),
        st.integers(min_value=1, max_value=3),
    )


class TestInvariantsUnderRandomStreams:
    @given(
        queries=st.lists(query_strategy(), min_size=1, max_size=4),
        documents=st.lists(document_strategy(), min_size=1, max_size=40),
        window_size=st.integers(min_value=1, max_value=8),
    )
    @settings(max_examples=120, deadline=None)
    def test_count_based_window(self, queries, documents, window_size):
        engine = ITAEngine(CountBasedWindow(window_size))
        for query_id, (weights, k) in enumerate(queries):
            engine.register_query(ContinuousQuery(query_id, weights, k=k))
        for doc_id, weights in enumerate(documents):
            engine.process(make_document(doc_id, weights, arrival_time=float(doc_id)))
            engine.check_invariants()

    @given(
        queries=st.lists(query_strategy(), min_size=1, max_size=3),
        documents=st.lists(document_strategy(), min_size=1, max_size=30),
        span=st.floats(min_value=0.5, max_value=10.0),
        gaps=st.lists(st.floats(min_value=0.1, max_value=3.0), min_size=30, max_size=30),
    )
    @settings(max_examples=60, deadline=None)
    def test_time_based_window(self, queries, documents, span, gaps):
        engine = ITAEngine(TimeBasedWindow(span))
        for query_id, (weights, k) in enumerate(queries):
            engine.register_query(ContinuousQuery(query_id, weights, k=k))
        clock = 0.0
        for doc_id, weights in enumerate(documents):
            clock += gaps[doc_id % len(gaps)]
            engine.process(make_document(doc_id, weights, arrival_time=clock))
            engine.check_invariants()

    @given(
        queries=st.lists(query_strategy(), min_size=1, max_size=3),
        prefill=st.lists(document_strategy(), min_size=5, max_size=20),
        documents=st.lists(document_strategy(), min_size=1, max_size=20),
    )
    @settings(max_examples=60, deadline=None)
    def test_registration_on_populated_window(self, queries, prefill, documents):
        """Queries installed after the window already holds documents."""
        engine = ITAEngine(CountBasedWindow(10))
        for doc_id, weights in enumerate(prefill):
            engine.process(make_document(doc_id, weights, arrival_time=float(doc_id)))
        for query_id, (weights, k) in enumerate(queries):
            engine.register_query(ContinuousQuery(query_id, weights, k=k))
        engine.check_invariants()
        for offset, weights in enumerate(documents):
            doc_id = len(prefill) + offset
            engine.process(make_document(doc_id, weights, arrival_time=float(doc_id)))
            engine.check_invariants()


class TestInvariantSmoke:
    def test_long_seeded_stream(self):
        """A longer deterministic stream checked at every step."""
        import random

        rng = random.Random(1234)
        engine = ITAEngine(CountBasedWindow(12))
        for query_id in range(6):
            terms = rng.sample(range(15), rng.randint(1, 4))
            weights = {t: rng.choice([0.1, 0.3, 0.5, 0.7, 1.0]) for t in terms}
            engine.register_query(ContinuousQuery(query_id, weights, k=rng.randint(1, 4)))
        for doc_id in range(250):
            terms = rng.sample(range(15), rng.randint(0, 5))
            weights = {t: rng.choice([0.1, 0.2, 0.4, 0.6, 0.8, 1.0]) for t in terms}
            engine.process(make_document(doc_id, weights, arrival_time=float(doc_id)))
            if doc_id % 5 == 0:
                engine.check_invariants()
        engine.check_invariants()
