"""Tests for the threshold-algorithm descent (initial top-k search)."""

import pytest

from repro.core.descent import threshold_descent
from repro.index.inverted_index import InvertedIndex
from repro.query.query import ContinuousQuery
from repro.query.result import ResultList
from repro.monitoring.instrumentation import OperationCounters
from tests.conftest import make_document


def build_index(documents):
    index = InvertedIndex()
    for document in documents:
        index.insert_document(document)
    return index


@pytest.fixture
def two_term_setup():
    """The worked scenario used throughout the core tests.

    Query terms A=11 (weight 0.4) and B=20 (weight 0.6), k=2.
    Documents (weights for A, B):
        d1: (0.9, -)    score 0.36
        d2: (0.8, 0.5)  score 0.62
        d3: (-,   0.9)  score 0.54
        d4: (0.5, 0.1)  score 0.26
        d5: (0.3, -)    score 0.12
    """
    documents = [
        make_document(1, {11: 0.9}, arrival_time=1.0),
        make_document(2, {11: 0.8, 20: 0.5}, arrival_time=2.0),
        make_document(3, {20: 0.9}, arrival_time=3.0),
        make_document(4, {11: 0.5, 20: 0.1}, arrival_time=4.0),
        make_document(5, {11: 0.3}, arrival_time=5.0),
    ]
    index = build_index(documents)
    query = ContinuousQuery(0, {11: 0.4, 20: 0.6}, k=2)
    return index, query


class TestInitialSearch:
    def test_finds_correct_topk(self, two_term_setup):
        index, query = two_term_setup
        results = ResultList()
        threshold_descent(query, index, results)
        top = results.top(2)
        assert [entry.doc_id for entry in top] == [2, 3]
        assert top[0].score == pytest.approx(0.62)
        assert top[1].score == pytest.approx(0.54)

    def test_keeps_unverified_documents_in_r(self, two_term_setup):
        index, query = two_term_setup
        results = ResultList()
        threshold_descent(query, index, results)
        # d1 was encountered before termination and must stay in R even
        # though it is not part of the top-2.
        assert 1 in results
        assert results.score_of(1) == pytest.approx(0.36)
        # d4 and d5 lie below the final thresholds and were never touched.
        assert 4 not in results and 5 not in results

    def test_threshold_outcome(self, two_term_setup):
        index, query = two_term_setup
        results = ResultList()
        outcome = threshold_descent(query, index, results)
        assert outcome.thresholds == pytest.approx({11: 0.5, 20: 0.5})
        assert outcome.tau == pytest.approx(0.4 * 0.5 + 0.6 * 0.5)
        assert not outcome.exhausted
        # three postings were read: d3 from L_B, d1 and d2 from L_A
        assert outcome.postings_scanned == 3
        assert outcome.scores_computed == 3

    def test_favours_lists_with_higher_query_weight(self, two_term_setup):
        index, query = two_term_setup
        results = ResultList()
        # The first posting consumed must come from L_B (w_{Q,B} * 0.9 = 0.54
        # beats w_{Q,A} * 0.9 = 0.36), i.e. d3 must be scored even though a
        # round-robin TA would have started with L_A.
        outcome = threshold_descent(query, index, results)
        assert 3 in results

    def test_counters_updated(self, two_term_setup):
        index, query = two_term_setup
        counters = OperationCounters()
        threshold_descent(query, index, ResultList(), counters=counters)
        assert counters.postings_scanned == 3
        assert counters.scores_computed == 3

    def test_fewer_documents_than_k(self):
        index = build_index([make_document(1, {11: 0.9})])
        query = ContinuousQuery(0, {11: 1.0}, k=5)
        results = ResultList()
        outcome = threshold_descent(query, index, results)
        assert outcome.exhausted
        assert outcome.thresholds == {11: 0.0}
        assert outcome.tau == 0.0
        assert [entry.doc_id for entry in results.top(5)] == [1]

    def test_query_term_with_no_inverted_list(self):
        index = build_index([make_document(1, {11: 0.9})])
        query = ContinuousQuery(0, {11: 0.5, 99: 0.5}, k=1)
        results = ResultList()
        outcome = threshold_descent(query, index, results)
        assert outcome.thresholds[99] == 0.0
        assert [entry.doc_id for entry in results.top(1)] == [1]

    def test_empty_index(self):
        index = InvertedIndex()
        query = ContinuousQuery(0, {11: 1.0}, k=3)
        results = ResultList()
        outcome = threshold_descent(query, index, results)
        assert outcome.exhausted
        assert len(results) == 0

    def test_already_satisfied_result_terminates_immediately(self, two_term_setup):
        index, query = two_term_setup
        results = ResultList()
        first = threshold_descent(query, index, results)
        # Re-running from the recorded thresholds must not scan anything new:
        # R already holds k verified documents.
        second = threshold_descent(
            query, index, results, start_thresholds=first.thresholds
        )
        assert second.scores_computed == 0
        assert [e.doc_id for e in results.top(2)] == [2, 3]


class TestResumedSearch:
    def test_resume_descends_below_recorded_thresholds(self, two_term_setup):
        index, query = two_term_setup
        results = ResultList()
        first = threshold_descent(query, index, results)
        # Remove the top document (as an expiration would) and resume.
        index.remove_document(2)
        results.remove(2)
        outcome = threshold_descent(
            query, index, results, start_thresholds=first.thresholds
        )
        top = results.top(2)
        assert [entry.doc_id for entry in top] == [3, 1]
        assert outcome.thresholds[11] <= first.thresholds[11]

    def test_resume_respects_verification_bound(self, two_term_setup):
        index, query = two_term_setup
        results = ResultList()
        first = threshold_descent(query, index, results)
        index.remove_document(3)
        results.remove(3)
        threshold_descent(query, index, results, start_thresholds=first.thresholds)
        top = results.top(2)
        # The true top-2 after d3 leaves is d2 (0.62) and d1 (0.36).
        assert [entry.doc_id for entry in top] == [2, 1]
