"""Tests for the threshold-descent probing strategies and ITA ablation flags."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.descent import ProbeOrder, threshold_descent
from repro.core.engine import ITAEngine
from repro.baselines.oracle import OracleEngine
from repro.documents.window import CountBasedWindow
from repro.index.inverted_index import InvertedIndex
from repro.query.query import ContinuousQuery
from repro.query.result import ResultList
from tests.conftest import StreamCase, assert_same_topk, make_document


def build_index(documents):
    index = InvertedIndex()
    for document in documents:
        index.insert_document(document)
    return index


@pytest.fixture
def setup():
    documents = [
        make_document(1, {11: 0.9}, arrival_time=1.0),
        make_document(2, {11: 0.8, 20: 0.5}, arrival_time=2.0),
        make_document(3, {20: 0.9}, arrival_time=3.0),
        make_document(4, {11: 0.5, 20: 0.1}, arrival_time=4.0),
    ]
    return build_index(documents), ContinuousQuery(0, {11: 0.4, 20: 0.6}, k=2)


class TestProbeOrderEquivalence:
    def test_both_orders_find_the_same_topk(self, setup):
        index, query = setup
        weighted = ResultList()
        threshold_descent(query, index, weighted, probe_order=ProbeOrder.WEIGHTED)
        round_robin = ResultList()
        threshold_descent(query, index, round_robin, probe_order=ProbeOrder.ROUND_ROBIN)
        assert [e.doc_id for e in weighted.top(2)] == [e.doc_id for e in round_robin.top(2)]

    def test_weighted_reads_no_more_postings_than_round_robin(self, setup):
        index, query = setup
        weighted = threshold_descent(query, index, ResultList(), probe_order=ProbeOrder.WEIGHTED)
        round_robin = threshold_descent(
            query, index, ResultList(), probe_order=ProbeOrder.ROUND_ROBIN
        )
        # On this scenario the weighted strategy terminates at least as early.
        assert weighted.postings_scanned <= round_robin.postings_scanned


class TestRoundRobinSpreadsProbes:
    def test_round_robin_cycles_between_lists(self):
        # Two lists of equal query weight; round-robin must alternate.
        documents = [
            make_document(i, {0: 0.5}, arrival_time=float(i)) for i in range(5)
        ] + [make_document(10 + i, {1: 0.5}, arrival_time=float(10 + i)) for i in range(5)]
        index = build_index(documents)
        query = ContinuousQuery(0, {0: 0.5, 1: 0.5}, k=2)
        results = ResultList()
        outcome = threshold_descent(query, index, results, probe_order=ProbeOrder.ROUND_ROBIN)
        assert outcome.scores_computed >= 2


class TestITAAblationFlags:
    @pytest.mark.parametrize("enable_rollup", [True, False])
    @pytest.mark.parametrize("probe_order", [ProbeOrder.WEIGHTED, ProbeOrder.ROUND_ROBIN])
    def test_variants_match_oracle(self, enable_rollup, probe_order):
        case = StreamCase(seed=3, num_documents=120)
        window = 12
        ita = ITAEngine(CountBasedWindow(window), enable_rollup=enable_rollup, probe_order=probe_order)
        oracle = OracleEngine(CountBasedWindow(window))
        for query in case.queries:
            ita.register_query(query)
            oracle.register_query(query)
        for position, document in enumerate(case.documents):
            ita.process(document)
            oracle.process(document)
            if position % 8 == 0 or position >= len(case.documents) - 5:
                for query in case.queries:
                    assert_same_topk(
                        oracle.current_result(query.query_id),
                        ita.current_result(query.query_id),
                        context=f"(rollup={enable_rollup}, probe={probe_order}, event {position})",
                    )
        ita.check_invariants()

    def test_no_rollup_never_raises_thresholds(self):
        documents = [
            make_document(1, {11: 0.5}, arrival_time=1.0),
            make_document(2, {11: 0.4}, arrival_time=2.0),
        ]
        index = InvertedIndex()
        from repro.core.ita import ITAQueryState

        for document in documents:
            index.insert_document(document)
        state = ITAQueryState(ContinuousQuery(0, {11: 1.0}, k=1), index, enable_rollup=False)
        state.initialise()
        thresholds_before = dict(state.thresholds)
        arrival = make_document(3, {11: 0.9}, arrival_time=3.0)
        index.insert_document(arrival)
        state.handle_arrival(arrival)
        # The new document still wins the top-1, but no roll-up happened.
        assert [e.doc_id for e in state.top_k()] == [3]
        assert state.counters.rollup_steps == 0
        assert state.thresholds[11] <= thresholds_before[11]
        state.check_invariants()

    @given(
        queries=st.lists(
            st.tuples(
                st.dictionaries(st.integers(0, 8), st.sampled_from([0.2, 0.5, 1.0]), min_size=1, max_size=3),
                st.integers(1, 3),
            ),
            min_size=1,
            max_size=3,
        ),
        documents=st.lists(
            st.dictionaries(st.integers(0, 8), st.sampled_from([0.2, 0.5, 1.0]), min_size=0, max_size=4),
            min_size=1,
            max_size=25,
        ),
    )
    @settings(max_examples=40, deadline=None)
    def test_no_rollup_equivalence_property(self, queries, documents):
        window = 6
        ita = ITAEngine(CountBasedWindow(window), enable_rollup=False)
        oracle = OracleEngine(CountBasedWindow(window))
        for query_id, (weights, k) in enumerate(queries):
            ita.register_query(ContinuousQuery(query_id, weights, k=k))
            oracle.register_query(ContinuousQuery(query_id, weights, k=k))
        for doc_id, weights in enumerate(documents):
            document = make_document(doc_id, weights, arrival_time=float(doc_id))
            ita.process(document)
            oracle.process(document)
            for query_id in range(len(queries)):
                assert_same_topk(
                    oracle.current_result(query_id), ita.current_result(query_id)
                )
