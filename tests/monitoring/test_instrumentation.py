"""Tests for the operation counters."""

from repro.monitoring.instrumentation import OperationCounters


class TestOperationCounters:
    def test_defaults_to_zero(self):
        counters = OperationCounters()
        assert all(value == 0 for value in counters.as_dict().values())

    def test_as_dict_contains_all_fields(self):
        counters = OperationCounters()
        keys = counters.as_dict().keys()
        for expected in ("scores_computed", "rollup_steps", "refills", "arrivals"):
            assert expected in keys

    def test_reset(self):
        counters = OperationCounters(scores_computed=5, refills=2)
        counters.reset()
        assert counters.scores_computed == 0
        assert counters.refills == 0

    def test_merged_with(self):
        a = OperationCounters(scores_computed=5, arrivals=1)
        b = OperationCounters(scores_computed=2, expirations=3)
        merged = a.merged_with(b)
        assert merged.scores_computed == 7
        assert merged.arrivals == 1
        assert merged.expirations == 3
        # inputs untouched
        assert a.scores_computed == 5 and b.scores_computed == 2

    def test_subtraction(self):
        after = OperationCounters(scores_computed=10, refills=4)
        before = OperationCounters(scores_computed=6, refills=1)
        diff = after - before
        assert diff.scores_computed == 4
        assert diff.refills == 3

    def test_copy_is_independent(self):
        original = OperationCounters(scores_computed=1)
        snapshot = original.copy()
        original.scores_computed = 99
        assert snapshot.scores_computed == 1
