"""Tests for timers and summaries."""

import pytest

from repro.monitoring.metrics import PercentileSummary, Timer, TimingSummary


class TestTimer:
    def test_context_manager_accumulates(self):
        timer = Timer()
        with timer:
            pass
        with timer:
            pass
        assert timer.count == 2
        assert timer.total_ms >= 0.0
        assert timer.mean_ms == pytest.approx(timer.total_ms / 2)

    def test_stop_returns_elapsed(self):
        timer = Timer()
        timer.start()
        elapsed = timer.stop()
        assert elapsed >= 0.0

    def test_double_start_rejected(self):
        timer = Timer()
        timer.start()
        with pytest.raises(RuntimeError):
            timer.start()

    def test_stop_without_start_rejected(self):
        with pytest.raises(RuntimeError):
            Timer().stop()

    def test_mean_of_unused_timer_is_zero(self):
        assert Timer().mean_ms == 0.0

    def test_reset(self):
        timer = Timer()
        with timer:
            pass
        timer.reset()
        assert timer.count == 0 and timer.total_ms == 0.0


class TestPercentileSummary:
    def test_empty_samples(self):
        summary = PercentileSummary.from_samples([])
        assert summary.count == 0
        assert summary.mean == 0.0

    def test_known_distribution(self):
        samples = list(range(1, 101))  # 1..100
        summary = PercentileSummary.from_samples([float(s) for s in samples])
        assert summary.count == 100
        assert summary.minimum == 1.0
        assert summary.maximum == 100.0
        assert summary.mean == pytest.approx(50.5)
        assert summary.p50 == 50.0
        assert summary.p90 == 90.0
        assert summary.p99 == 99.0

    def test_single_sample(self):
        summary = PercentileSummary.from_samples([3.5])
        assert summary.p50 == summary.p99 == 3.5


class TestTimingSummary:
    def test_record_and_mean(self):
        timing = TimingSummary()
        timing.record("ita", 1.0)
        timing.record("ita", 3.0)
        timing.record("naive", 10.0)
        assert timing.mean_ms("ita") == pytest.approx(2.0)
        assert timing.mean_ms("naive") == pytest.approx(10.0)
        assert timing.mean_ms("unknown") == 0.0
        assert sorted(timing.labels()) == ["ita", "naive"]

    def test_extend_and_samples(self):
        timing = TimingSummary()
        timing.extend("ita", [1.0, 2.0, 3.0])
        assert timing.samples("ita") == [1.0, 2.0, 3.0]
        assert timing.summary("ita").count == 3

    def test_merge(self):
        a = TimingSummary()
        a.record("ita", 1.0)
        b = TimingSummary()
        b.record("ita", 3.0)
        b.record("naive", 4.0)
        a.merge(b)
        assert a.mean_ms("ita") == pytest.approx(2.0)
        assert a.mean_ms("naive") == pytest.approx(4.0)
