"""Tests for the typed engine specifications and the kind registry."""

import pytest

from repro.baselines.kmax import (
    AdaptiveKMaxPolicy,
    AnalyticalKMaxPolicy,
    FixedKMaxPolicy,
    KMaxNaiveEngine,
)
from repro.baselines.naive import NaiveEngine
from repro.baselines.oracle import OracleEngine
from repro.cluster.engine import ShardedEngine
from repro.cluster.placement import CostModelPlacement, RoundRobinPlacement
from repro.core.descent import ProbeOrder
from repro.core.engine import ITAEngine
from repro.documents.window import CountBasedWindow, TimeBasedWindow
from repro.exceptions import ConfigurationError, ExperimentError, UnknownEngineError
from repro.service.spec import (
    EngineSpec,
    PlacementCalibration,
    WindowSpec,
    engine_kinds,
    register_engine_kind,
    spec_from_name,
)

from tests.conftest import make_document, make_query


#: one representative spec per registered builtin kind
REPRESENTATIVE_SPECS = {
    "ita": EngineSpec(
        kind="ita",
        window=WindowSpec.count(25),
        enable_rollup=False,
        probe_order=ProbeOrder.ROUND_ROBIN.value,
    ),
    "naive": EngineSpec(kind="naive", window=WindowSpec.count(25)),
    "naive-kmax": EngineSpec(
        kind="naive-kmax", window=WindowSpec.count(25), kmax_multiplier=3.0
    ),
    "oracle": EngineSpec(kind="oracle", window=WindowSpec.count(25)),
    "sharded": EngineSpec(
        kind="sharded",
        window=WindowSpec.count(25),
        num_shards=3,
        placement="round-robin",
        inner=EngineSpec(kind="naive", window=WindowSpec.count(25)),
        calibration=PlacementCalibration(dictionary_size=500, window_size=25),
    ),
}

EXPECTED_TYPES = {
    "ita": ITAEngine,
    "naive": NaiveEngine,
    "naive-kmax": KMaxNaiveEngine,
    "oracle": OracleEngine,
    "sharded": ShardedEngine,
}


def drive(engine, seed=3, documents=40):
    """Feed a deterministic little stream + queries; return final results."""
    queries = [make_query(0, {1: 1.0, 2: 0.5}, k=2), make_query(1, {3: 0.9}, k=1)]
    for query in queries:
        engine.register_query(query)
    clock = 0.0
    for doc_id in range(documents):
        clock += 1.0
        weights = {1 + (doc_id % 4): 0.1 + (doc_id % 7) * 0.1}
        engine.process(make_document(doc_id, weights, arrival_time=clock))
    return {
        query.query_id: [
            (entry.doc_id, round(entry.score, 9))
            for entry in engine.current_result(query.query_id)
        ]
        for query in queries
    }


class TestWindowSpec:
    def test_count_build(self):
        window = WindowSpec.count(42).build()
        assert isinstance(window, CountBasedWindow)
        assert window.size == 42

    def test_time_build(self):
        window = WindowSpec.time(7.5).build()
        assert isinstance(window, TimeBasedWindow)
        assert window.span == 7.5

    def test_round_trip_matches_persistence_encoding(self):
        spec = WindowSpec.count(10)
        assert spec.to_dict() == {"type": "count", "size": 10}
        assert WindowSpec.from_dict(spec.to_dict()) == spec
        spec = WindowSpec.time(3.0)
        assert spec.to_dict() == {"type": "time", "span": 3.0}
        assert WindowSpec.from_dict(spec.to_dict()) == spec

    def test_of_existing_window(self):
        assert WindowSpec.of(CountBasedWindow(9)) == WindowSpec.count(9)
        assert WindowSpec.of(TimeBasedWindow(2.0)) == WindowSpec.time(2.0)

    def test_invalid(self):
        with pytest.raises(ConfigurationError):
            WindowSpec(kind="banana").validate()
        with pytest.raises(ConfigurationError):
            WindowSpec.count(0).build()


class TestEngineSpecBuild:
    @pytest.mark.parametrize("kind", sorted(REPRESENTATIVE_SPECS))
    def test_every_registered_kind_is_constructible(self, kind):
        engine = REPRESENTATIVE_SPECS[kind].build()
        assert isinstance(engine, EXPECTED_TYPES[kind])

    def test_builtin_kinds_registered(self):
        assert set(engine_kinds()) >= {"ita", "naive", "naive-kmax", "oracle", "sharded"}

    def test_ita_knobs_applied(self):
        engine = REPRESENTATIVE_SPECS["ita"].build()
        assert engine.enable_rollup is False
        assert engine.probe_order is ProbeOrder.ROUND_ROBIN
        assert engine.track_changes is True
        assert isinstance(engine.window, CountBasedWindow) and engine.window.size == 25

    def test_track_changes_forwarded(self):
        engine = EngineSpec(kind="ita", track_changes=False).build()
        assert engine.track_changes is False

    def test_kmax_policies(self):
        fixed = REPRESENTATIVE_SPECS["naive-kmax"].build()
        assert isinstance(fixed.policy, FixedKMaxPolicy)
        assert fixed.policy.multiplier == 3.0
        adaptive = EngineSpec(kind="naive-kmax", kmax_policy="adaptive").build()
        assert isinstance(adaptive.policy, AdaptiveKMaxPolicy)
        analytical = EngineSpec(
            kind="naive-kmax", kmax_policy="analytical", window=WindowSpec.count(64)
        ).build()
        assert isinstance(analytical.policy, AnalyticalKMaxPolicy)
        assert analytical.policy.window_size == 64

    def test_sharded_spec(self):
        cluster = REPRESENTATIVE_SPECS["sharded"].build()
        assert cluster.num_shards == 3
        assert isinstance(cluster.placement, RoundRobinPlacement)
        assert all(isinstance(shard, NaiveEngine) for shard in cluster.shards)

    def test_sharded_cost_calibration(self):
        spec = EngineSpec(
            kind="sharded",
            num_shards=2,
            window=WindowSpec.count(25),
            calibration=PlacementCalibration(dictionary_size=123, window_size=25),
        )
        cluster = spec.build()
        assert isinstance(cluster.placement, CostModelPlacement)
        assert cluster.placement.dictionary_size == 123
        assert cluster.placement.window_size == 25

    def test_sharded_default_inner_is_ita(self):
        cluster = EngineSpec(kind="sharded", window=WindowSpec.count(10)).build()
        assert all(isinstance(shard, ITAEngine) for shard in cluster.shards)


class TestEngineSpecValidation:
    def test_unknown_kind(self):
        with pytest.raises(UnknownEngineError):
            EngineSpec(kind="warp").build()

    def test_unknown_kind_is_both_configuration_and_experiment_error(self):
        with pytest.raises(ConfigurationError):
            EngineSpec(kind="warp").validate()
        with pytest.raises(ExperimentError):
            EngineSpec(kind="warp").validate()

    def test_invalid_probe_order(self):
        with pytest.raises(ConfigurationError):
            EngineSpec(probe_order="sideways").validate()

    def test_invalid_kmax(self):
        with pytest.raises(ConfigurationError):
            EngineSpec(kmax_policy="magic").validate()
        with pytest.raises(ConfigurationError):
            EngineSpec(kmax_multiplier=0.5).validate()

    def test_analytical_kmax_needs_count_window(self):
        with pytest.raises(ConfigurationError, match="count-based"):
            EngineSpec(
                kind="naive-kmax",
                kmax_policy="analytical",
                window=WindowSpec.time(5.0),
            ).validate()
        # adaptive is the documented alternative for time-based windows
        EngineSpec(
            kind="naive-kmax", kmax_policy="adaptive", window=WindowSpec.time(5.0)
        ).validate()

    def test_invalid_sharding(self):
        with pytest.raises(ConfigurationError):
            EngineSpec(kind="sharded", num_shards=0).validate()
        with pytest.raises(ConfigurationError):
            EngineSpec(kind="sharded", placement="everywhere").validate()
        with pytest.raises(ConfigurationError):
            EngineSpec(kind="ita", inner=EngineSpec(kind="naive")).validate()
        with pytest.raises(ConfigurationError):
            EngineSpec(kind="sharded", inner=EngineSpec(kind="sharded")).validate()

    def test_inconsistent_inner_spec_rejected(self):
        """A mismatching inner spec must fail loudly, not be silently ignored."""
        with pytest.raises(ConfigurationError, match="track_changes"):
            EngineSpec(
                kind="sharded",
                track_changes=True,
                inner=EngineSpec(kind="ita", track_changes=False),
            ).validate()
        with pytest.raises(ConfigurationError, match="window"):
            EngineSpec(
                kind="sharded",
                window=WindowSpec.count(25),
                inner=EngineSpec(kind="ita", window=WindowSpec.count(50)),
            ).validate()


class TestEngineSpecRoundTrip:
    @pytest.mark.parametrize("kind", sorted(REPRESENTATIVE_SPECS))
    def test_dict_round_trip_is_identity(self, kind):
        spec = REPRESENTATIVE_SPECS[kind]
        assert EngineSpec.from_dict(spec.to_dict()) == spec

    @pytest.mark.parametrize("kind", sorted(REPRESENTATIVE_SPECS))
    def test_round_tripped_spec_builds_equivalent_engine(self, kind):
        """from_dict(to_dict(spec)) must rebuild an engine that reports the
        same results as the original on the same stream."""
        spec = REPRESENTATIVE_SPECS[kind]
        original = drive(spec.build())
        rebuilt = drive(EngineSpec.from_dict(spec.to_dict()).build())
        assert rebuilt == original

    def test_round_trip_survives_json(self):
        import json

        spec = REPRESENTATIVE_SPECS["sharded"]
        assert EngineSpec.from_dict(json.loads(json.dumps(spec.to_dict()))) == spec

    def test_from_dict_defaults_missing_keys(self):
        spec = EngineSpec.from_dict({"kind": "naive"})
        assert spec == EngineSpec(kind="naive")


class TestSpecFromName:
    def test_single_engine_aliases(self):
        assert spec_from_name("ita").kind == "ita"
        assert spec_from_name("ita-no-rollup").enable_rollup is False
        assert spec_from_name("ita-round-robin").probe_order == ProbeOrder.ROUND_ROBIN.value
        assert spec_from_name("naive").kind == "naive"
        assert spec_from_name("oracle").kind == "oracle"
        spec = spec_from_name("naive-kmax", options={"kmax_multiplier": 4.0})
        assert spec.kind == "naive-kmax" and spec.kmax_multiplier == 4.0

    def test_sharded_names(self):
        spec = spec_from_name("sharded-ita-4")
        assert spec.kind == "sharded" and spec.num_shards == 4
        assert spec.inner.kind == "ita"
        spec = spec_from_name("sharded-naive", options={"num_shards": 3})
        assert spec.num_shards == 3 and spec.inner.kind == "naive"
        assert spec_from_name("sharded").inner.kind == "ita"

    def test_unknown_names(self):
        with pytest.raises(UnknownEngineError):
            spec_from_name("magic")
        with pytest.raises(UnknownEngineError):
            spec_from_name("sharded-magic-2")


class TestRegistry:
    def test_custom_kind_registers_and_builds(self):
        class TaggedNaive(NaiveEngine):
            name = "tagged"

        register_engine_kind(
            "tagged-naive",
            lambda spec, window: TaggedNaive(window, track_changes=spec.track_changes),
            description="test-only kind",
        )
        try:
            engine = EngineSpec(kind="tagged-naive", window=WindowSpec.count(5)).build()
            assert isinstance(engine, TaggedNaive)
            assert "tagged-naive" in engine_kinds()
        finally:
            from repro.service import spec as spec_module

            spec_module._KINDS.pop("tagged-naive", None)

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ConfigurationError):
            register_engine_kind("ita", lambda spec, window: None)

    def test_sharded_engine_factory_unavailable(self):
        with pytest.raises(ConfigurationError):
            EngineSpec(kind="sharded").engine_factory()


class TestStorageField:
    def test_default_is_bisect(self):
        spec = EngineSpec(kind="ita", window=WindowSpec.count(10))
        assert spec.storage == "bisect"
        assert spec.build().index.backend.name == "bisect"

    def test_columnar_builds_columnar_index(self):
        spec = EngineSpec(kind="ita", window=WindowSpec.count(10), storage="columnar")
        assert spec.build().index.backend.name == "columnar"

    def test_unknown_storage_rejected(self):
        with pytest.raises(ConfigurationError, match="storage backend"):
            EngineSpec(
                kind="ita", window=WindowSpec.count(10), storage="flat-file"
            ).validate()

    def test_round_trips_through_dict(self):
        spec = EngineSpec(kind="ita", window=WindowSpec.count(10), storage="columnar")
        data = spec.to_dict()
        assert data["storage"] == "columnar"
        assert EngineSpec.from_dict(data) == spec
        # absent key falls back to the default, for snapshots predating
        # the storage field
        data.pop("storage")
        assert EngineSpec.from_dict(data).storage == "bisect"

    def test_with_overrides_switches_backend_only(self):
        spec = EngineSpec(kind="ita", window=WindowSpec.count(10))
        overridden = spec.with_overrides(storage="columnar")
        assert overridden.storage == "columnar"
        assert overridden == EngineSpec(
            kind="ita", window=WindowSpec.count(10), storage="columnar"
        )
        assert spec.storage == "bisect"  # the original is untouched

    def test_named_columnar_alias(self):
        spec = spec_from_name("ita-columnar")
        assert spec.kind == "ita"
        assert spec.storage == "columnar"

    def test_spec_from_name_storage_option(self):
        spec = spec_from_name("ita", options={"storage": "columnar"})
        assert spec.storage == "columnar"
        # cluster names route the option to the inner spec the shards use
        sharded = spec_from_name("sharded-ita-2", options={"storage": "columnar"})
        assert sharded.shard_spec().storage == "columnar"

    def test_cluster_specs_propagate_storage_to_shards(self):
        for kind in ("sharded", "sharded-proc"):
            spec = EngineSpec(
                kind=kind,
                window=WindowSpec.count(10),
                num_shards=2,
                storage="columnar",
            )
            assert spec.shard_spec().storage == "columnar"
