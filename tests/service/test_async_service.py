"""The asynchronous service façade.

The headline guarantee -- the acceptance criterion of the async ingestion
subsystem -- is that :class:`~repro.service.AsyncMonitoringService` on the
sharded figure-3(a) workload produces *bit-identical* snapshots and change
streams to sequential ``ingest``.  The rest of the module covers the
async API surface: serve()/ingest_async wiring, drain-before-read
semantics, alert ordering, lifecycle and argument validation.
"""

import asyncio

import pytest

from repro.documents.window import WindowSpec
from repro.exceptions import ServiceError
from repro.query.query import ContinuousQuery
from repro.service import (
    AsyncMonitoringService,
    EngineSpec,
    MonitoringService,
    spec_from_name,
)
from tests.conftest import StreamCase


def fresh_service(name="sharded-ita-3", window=14):
    return MonitoringService(spec_from_name(name, window=WindowSpec.count(window)))


def run(coroutine):
    return asyncio.run(coroutine)


class TestFigure3aAcceptance:
    """Bit-identity on the paper's figure-3(a) workload, sharded."""

    @pytest.fixture(scope="class")
    def workload(self):
        from repro.workloads.experiments import figure_3a
        from repro.workloads.generators import build_workload

        definition = figure_3a("smoke")
        point = next(p for p in definition.points if p.label.startswith("n=10"))
        return point.config, build_workload(point.config)

    def test_async_matches_sequential_bit_for_bit(self, workload):
        config, generated = workload
        spec = spec_from_name(
            "sharded-ita-4", window=WindowSpec.count(config.window_size)
        )
        stream = list(generated.prefill) + list(generated.measured)

        def subscribed(service):
            for query in generated.queries:
                service.subscribe(
                    ContinuousQuery(
                        query_id=query.query_id, weights=query.weights, k=query.k
                    )
                )
            return service

        sequential = subscribed(MonitoringService(spec))
        sequential_changes = sequential.ingest(stream)

        async def concurrent_run():
            async with AsyncMonitoringService(
                spec, max_workers=4, queue_depth=2, batch_size=32
            ) as service:
                subscribed(service.service)
                changes = await service.ingest(stream)
                return changes, await service.results(), await service.snapshot()

        async_changes, async_results, async_snapshot = run(concurrent_run())
        assert async_changes == sequential_changes
        assert async_results == sequential.results()
        assert async_snapshot == sequential.snapshot()


class TestIngestEquivalence:
    @pytest.mark.parametrize("name", ["ita", "naive", "sharded-ita-3"])
    @pytest.mark.parametrize("batch_size", [1, 7, 200])
    def test_changes_and_state_match_sync_for_any_batch_size(self, name, batch_size):
        case = StreamCase(seed=31, num_documents=110)
        sync_service = fresh_service(name)
        for query in case.queries:
            sync_service.subscribe(query)
        expected_changes = sync_service.ingest(case.documents)

        async def concurrent_run():
            service = fresh_service(name)
            async with AsyncMonitoringService(service, batch_size=batch_size) as aservice:
                for query in case.queries:
                    await aservice.subscribe(query)
                changes = await aservice.ingest(case.documents)
                return service, changes

        async_service, actual_changes = run(concurrent_run())
        assert actual_changes == expected_changes
        assert async_service.results() == sync_service.results()
        assert async_service.counters.as_dict() == sync_service.counters.as_dict()

    def test_raw_text_ingest_stamps_ids_and_clock_like_sync(self):
        texts = [f"breaking news about topic {index % 3}" for index in range(9)]
        sync_service = MonitoringService()
        sync_service.subscribe("breaking topic news", k=3)
        sync_service.ingest(texts)

        async def concurrent_run():
            service = MonitoringService()
            async with service.serve(batch_size=4) as aservice:
                await aservice.subscribe("breaking topic news", k=3)
                await aservice.ingest(texts)
                return service

        async_service = run(concurrent_run())
        assert async_service.clock == sync_service.clock
        assert async_service.results() == sync_service.results()
        assert async_service.snapshot() == sync_service.snapshot()

    def test_ingest_async_one_shot_wrapper(self):
        case = StreamCase(seed=37, num_documents=40)
        sync_service = fresh_service()
        expected = sync_service.ingest(case.documents)

        service = fresh_service()
        actual = run(service.ingest_async(case.documents, max_workers=2))
        assert actual == expected
        assert service.results() == sync_service.results()


class TestAlertDelivery:
    def test_alerts_arrive_in_stream_order_with_documents(self):
        case = StreamCase(seed=41, num_documents=80)
        def collect_sync():
            service = fresh_service()
            alerts = []
            for query in case.queries:
                service.subscribe(query, on_change=alerts.append)
            service.ingest(case.documents)
            return [
                (alert.query_id, alert.document.doc_id if alert.document else None)
                for alert in alerts
            ]

        async def collect_async():
            alerts = []
            async with AsyncMonitoringService(
                fresh_service(), batch_size=9
            ) as service:
                for query in case.queries:
                    await service.subscribe(query, on_change=alerts.append)
                await service.ingest(case.documents)
            return [
                (alert.query_id, alert.document.doc_id if alert.document else None)
                for alert in alerts
            ]

        assert run(collect_async()) == collect_sync()

    def test_mid_stream_subscription_sees_only_later_documents(self):
        case = StreamCase(seed=43, num_documents=60)
        sync_service = fresh_service()
        sync_service.subscribe(case.queries[0])
        sync_service.ingest(case.documents[:30])
        sync_service.subscribe(case.queries[1])
        sync_service.ingest(case.documents[30:])

        async def concurrent_run():
            service = fresh_service()
            async with AsyncMonitoringService(service, batch_size=8) as aservice:
                await aservice.subscribe(case.queries[0])
                await aservice.ingest(case.documents[:30])
                # subscribe() drains, so the initial result covers exactly
                # the 30 documents above -- same as the sync run.
                await aservice.subscribe(case.queries[1])
                await aservice.ingest(case.documents[30:])
            return service

        assert run(concurrent_run()).results() == sync_service.results()

    def test_unsubscribe_stops_alerts_like_sync(self):
        case = StreamCase(seed=47, num_documents=40)

        async def concurrent_run():
            service = fresh_service()
            async with AsyncMonitoringService(service, batch_size=6) as aservice:
                handle = await aservice.subscribe(case.queries[0])
                await aservice.ingest(case.documents[:20])
                await aservice.unsubscribe(handle.query_id)
                await aservice.ingest(case.documents[20:])
                assert handle.query_id not in service.query_ids()
            return service

        run(concurrent_run())


class TestLifecycleAndValidation:
    def test_ingest_requires_start(self):
        async def attempt():
            service = AsyncMonitoringService()
            with pytest.raises(ServiceError):
                await service.ingest(["text"])

        run(attempt())

    def test_start_is_idempotent_and_aclose_keeps_sync_service_open(self):
        async def lifecycle():
            service = AsyncMonitoringService(EngineSpec())
            await service.start()
            await service.start()
            assert service.started
            await service.aclose()
            assert not service.started
            # The wrapped synchronous service is still usable.
            service.service.ingest("still alive")
            await service.close()
            assert service.service.closed

        run(lifecycle())

    def test_rejects_service_kwargs_alongside_prebuilt_service(self):
        with pytest.raises(ServiceError):
            AsyncMonitoringService(MonitoringService(), interarrival=2.0)

    @pytest.mark.parametrize("bad", [0, -3])
    def test_rejects_non_positive_batch_size(self, bad):
        with pytest.raises(ServiceError):
            AsyncMonitoringService(batch_size=bad)

        async def bad_call():
            async with AsyncMonitoringService() as service:
                with pytest.raises(ServiceError):
                    await service.ingest(["text"], batch_size=bad)

        run(bad_call())

    def test_stats_expose_pipeline_progress(self):
        case = StreamCase(seed=53, num_documents=33)

        async def observe():
            async with AsyncMonitoringService(
                fresh_service(), batch_size=10
            ) as service:
                await service.ingest(case.documents)
                return service.stats

        stats = run(observe())
        assert stats.events == 33
        assert stats.batches == 4

    def test_serve_refuses_closed_service(self):
        service = MonitoringService()
        service.close()
        with pytest.raises(ServiceError):
            service.serve()


class TestAdvanceTime:
    def test_advance_time_matches_sync_expiry_alerts(self):
        case = StreamCase(seed=59, num_documents=50)
        spec = spec_from_name("sharded-ita-2", window=WindowSpec.time(8.0))
        final_time = case.documents[-1].arrival_time + 40.0

        sync_service = MonitoringService(spec)
        sync_alerts = []
        for query in case.queries:
            sync_service.subscribe(query, on_change=sync_alerts.append)
        sync_service.ingest(case.documents)
        sync_expiry = sync_service.advance_time(final_time)

        async def concurrent_run():
            alerts = []
            service = MonitoringService(spec)
            async with service.serve(batch_size=7) as aservice:
                for query in case.queries:
                    await aservice.subscribe(query, on_change=alerts.append)
                await aservice.ingest(case.documents)
                expiry = await aservice.advance_time(final_time)
            return service, expiry, alerts

        async_service, async_expiry, async_alerts = run(concurrent_run())
        assert async_expiry == sync_expiry
        assert async_service.clock == sync_service.clock
        assert async_service.results() == sync_service.results()
        assert len(async_alerts) == len(sync_alerts)
        # Expiry alerts carry no triggering document, on both paths.
        assert all(
            alert.document is None
            for alert in async_alerts[len(async_alerts) - len(async_expiry):]
        )
