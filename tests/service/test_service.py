"""Tests for the :class:`MonitoringService` façade and query handles."""

import json

import pytest

from repro.core.engine import ITAEngine
from repro.cluster.engine import ShardedEngine
from repro.documents.corpus import InMemoryCorpus
from repro.documents.document import Document
from repro.documents.stream import DocumentStream, FixedRateArrivalProcess
from repro.documents.window import CountBasedWindow
from repro.exceptions import (
    ConfigurationError,
    ServiceError,
    UnknownQueryError,
)
from repro.query.query import ContinuousQuery
from repro.service import EngineSpec, MonitoringService, WindowSpec
from repro.text.analyzer import Analyzer
from repro.text.vocabulary import Vocabulary

from tests.conftest import make_document


TEXTS = [
    "breaking news about markets",
    "weather update for tomorrow",
    "markets rally on strong earnings news",
    "storm warning for the coast",
]


def doc_ids(entries):
    return [entry.doc_id for entry in entries]


class TestSubscribeAndIngest:
    def test_text_subscription_matches_low_level_wiring(self):
        """The façade must report exactly what hand-wired parts report."""
        analyzer, vocabulary = Analyzer(), Vocabulary()
        corpus = InMemoryCorpus(TEXTS, analyzer=analyzer, vocabulary=vocabulary)
        engine = ITAEngine(CountBasedWindow(10))
        query = ContinuousQuery.from_text(
            0, "market news", k=2, analyzer=analyzer, vocabulary=vocabulary
        )
        engine.register_query(query)
        engine.process_many(DocumentStream(corpus, FixedRateArrivalProcess(rate=1.0)))

        service = MonitoringService(EngineSpec(window=WindowSpec.count(10)))
        handle = service.subscribe("market news", k=2)
        service.ingest(TEXTS)

        expected = [(e.doc_id, round(e.score, 9)) for e in engine.current_result(0)]
        actual = [(e.doc_id, round(e.score, 9)) for e in handle.result()]
        assert actual == expected

    def test_auto_allocated_query_ids(self):
        service = MonitoringService()
        first = service.subscribe("alpha news", k=1)
        second = service.subscribe("beta news", k=1)
        assert first.query_id != second.query_id
        assert set(service.query_ids()) == {first.query_id, second.query_id}

    def test_subscribe_prebuilt_query(self):
        service = MonitoringService()
        query = ContinuousQuery(7, {1: 1.0}, k=1)
        handle = service.subscribe(query)
        assert handle.query_id == 7
        service.ingest(make_document(0, {1: 0.5}, arrival_time=5.0))
        assert doc_ids(handle.result()) == [0]

    def test_ingest_returns_changes(self):
        service = MonitoringService()
        service.subscribe("market news", k=1)
        changes = service.ingest("breaking news about markets")
        assert len(changes) == 1 and changes[0].changed
        assert not service.ingest("totally unrelated weather")

    def test_ingest_document_and_streamed_document(self):
        service = MonitoringService()
        handle = service.subscribe(ContinuousQuery(0, {1: 1.0}, k=2))
        document = Document(doc_id=0, composition=make_document(0, {1: 0.4}).composition)
        service.ingest(document)
        service.ingest(make_document(5, {1: 0.9}, arrival_time=50.0))
        assert doc_ids(handle.result()) == [5, 0]
        # the clock and id sequence continue after the streamed document
        assert service.clock == 50.0
        service.ingest("plain text arrives later")
        assert service.clock == 51.0

    def test_ingest_explicit_timestamp(self):
        service = MonitoringService()
        service.ingest("first", at=10.0)
        assert service.clock == 10.0
        with pytest.raises(ConfigurationError):
            service.ingest("going backwards", at=5.0)
        with pytest.raises(ConfigurationError):
            service.ingest(["a", "b"], at=20.0)
        # streamed documents carry their own time; an override is rejected
        # rather than silently dropped
        with pytest.raises(ConfigurationError):
            service.ingest(make_document(0, {1: 0.5}, arrival_time=30.0), at=40.0)

    def test_ingest_rejects_unknown_types(self):
        service = MonitoringService()
        service.subscribe("anything at all", k=1)
        with pytest.raises(ConfigurationError):
            service.ingest([42])

    def test_unsubscribed_iterable_ingest_uses_batch_path(self):
        """Without subscribers, iterables go through engine.process_batch."""
        calls = []
        service = MonitoringService()
        original = service.engine.process_batch

        def spying_process_batch(documents):
            calls.append("batch")
            return original(documents)

        service.engine.process_batch = spying_process_batch
        # low-level registration: no façade subscriber exists
        service.engine.register_query(ContinuousQuery(0, {1: 1.0}, k=1))
        changes = service.ingest(
            [make_document(0, {1: 0.5}, arrival_time=1.0),
             make_document(1, {1: 0.9}, arrival_time=2.0)]
        )
        assert calls == ["batch"]
        assert len(changes) == 2
        # a subscriber forces the per-event path (alerts need documents)
        service.handle(0, on_change=lambda alert: None)
        service.ingest([make_document(2, {1: 0.95}, arrival_time=3.0)])
        assert calls == ["batch"]

    def test_on_change_callback_and_changes_drain(self):
        service = MonitoringService()
        seen = []
        handle = service.subscribe("market news", k=1, on_change=seen.append)
        service.ingest(TEXTS)
        assert seen, "callback should have fired"
        assert handle.pending_changes == len(seen)
        drained = list(handle.changes())
        assert [a.change for a in drained] == [a.change for a in seen]
        assert handle.pending_changes == 0
        assert list(handle.changes()) == []

    def test_alert_carries_triggering_document(self):
        service = MonitoringService()
        handle = service.subscribe("market news", k=1)
        service.ingest("breaking news about markets")
        [alert] = list(handle.changes())
        assert alert.document is not None
        assert alert.document.document.text == "breaking news about markets"

    def test_bounded_pending_buffer(self):
        service = MonitoringService()
        handle = service.subscribe(
            ContinuousQuery(0, {1: 1.0}, k=1), max_pending=2
        )
        for doc_id in range(5):
            service.ingest(make_document(doc_id, {1: 0.1 * (doc_id + 1)},
                                         arrival_time=float(doc_id)))
        assert handle.pending_changes == 2

    def test_callback_handles_bounded_by_default(self):
        """Callback consumers rarely drain; their buffer must not be unbounded."""
        from repro.service.service import DEFAULT_CALLBACK_MAX_PENDING

        service = MonitoringService()
        with_callback = service.subscribe(
            ContinuousQuery(0, {1: 1.0}, k=1), on_change=lambda alert: None
        )
        poll_only = service.subscribe(ContinuousQuery(1, {1: 1.0}, k=1))
        assert with_callback._pending.maxlen == DEFAULT_CALLBACK_MAX_PENDING
        assert poll_only._pending.maxlen is None

    def test_global_on_change_subscriber(self):
        service = MonitoringService()
        service.subscribe("market news", k=1)
        service.subscribe("storm coast", k=1)
        seen = []
        unsubscribe = service.on_change(seen.append)
        service.ingest(TEXTS)
        assert {alert.query_id for alert in seen} == {0, 1}
        unsubscribe()
        count = len(seen)
        service.ingest("markets surge on fresh news")
        assert len(seen) == count


class TestUnsubscribeAndLifecycle:
    def test_unsubscribe_terminates_query(self):
        service = MonitoringService()
        handle = service.subscribe("market news", k=1)
        service.ingest(TEXTS)
        handle.unsubscribe()
        assert not handle.active
        with pytest.raises(UnknownQueryError):
            handle.result()
        with pytest.raises(UnknownQueryError):
            service.result(handle.query_id)
        handle.unsubscribe()  # idempotent

    def test_unsubscribed_handle_gets_no_more_alerts(self):
        service = MonitoringService()
        handle = service.subscribe("market news", k=1)
        handle.unsubscribe()
        service.ingest("breaking news about markets")
        assert handle.pending_changes == 0

    def test_service_unsubscribe_by_id(self):
        service = MonitoringService()
        service.subscribe(ContinuousQuery(3, {1: 1.0}, k=1))
        service.unsubscribe(3)
        assert service.query_ids() == []
        with pytest.raises(UnknownQueryError):
            service.unsubscribe(3)

    def test_context_manager_closes(self):
        with MonitoringService() as service:
            handle = service.subscribe("market news", k=1)
            service.ingest("breaking news about markets")
        assert service.closed
        with pytest.raises(ServiceError):
            service.ingest("too late")
        with pytest.raises(ServiceError):
            service.subscribe("another", k=1)
        # results remain readable after close -- both through the service
        # and through existing handles (including undrained changes)
        assert doc_ids(service.result(handle.query_id)) == [0]
        assert handle.active
        assert doc_ids(handle.result()) == [0]
        assert len(list(handle.changes())) == 1

    def test_close_idempotent(self):
        service = MonitoringService()
        service.close()
        service.close()
        assert service.closed


class TestEngineSelection:
    def test_default_is_ita(self):
        assert isinstance(MonitoringService().engine, ITAEngine)

    def test_legacy_name_accepted(self):
        service = MonitoringService("sharded-ita-3")
        assert isinstance(service.engine, ShardedEngine)
        assert service.engine.num_shards == 3

    def test_prebuilt_engine_accepted(self):
        engine = ITAEngine(CountBasedWindow(5))
        service = MonitoringService(engine)
        assert service.engine is engine
        assert service.spec is None

    def test_engine_without_change_tracking_rejected(self):
        with pytest.raises(ConfigurationError):
            MonitoringService(ITAEngine(CountBasedWindow(5), track_changes=False))
        with pytest.raises(ConfigurationError):
            MonitoringService(EngineSpec(track_changes=False))

    def test_sharded_spec_behaves_like_single_engine(self):
        single = MonitoringService(EngineSpec(window=WindowSpec.count(10)))
        sharded = MonitoringService(
            EngineSpec(kind="sharded", num_shards=3, window=WindowSpec.count(10))
        )
        handles = [service.subscribe("market news", k=2) for service in (single, sharded)]
        for service in (single, sharded):
            service.ingest(TEXTS)
        assert [
            (e.doc_id, round(e.score, 9)) for e in handles[0].result()
        ] == [(e.doc_id, round(e.score, 9)) for e in handles[1].result()]


class TestSnapshotRestore:
    def _populated(self, spec):
        service = MonitoringService(spec)
        service.subscribe("market news", k=2)
        service.subscribe("storm coast", k=1)
        service.ingest(TEXTS)
        return service

    @pytest.mark.parametrize(
        "spec",
        [
            EngineSpec(window=WindowSpec.count(10)),
            EngineSpec(kind="naive", window=WindowSpec.count(10)),
            EngineSpec(
                kind="sharded",
                num_shards=2,
                window=WindowSpec.count(10),
                placement="hash",
            ),
        ],
        ids=["ita", "naive", "sharded"],
    )
    def test_round_trip_preserves_results(self, spec):
        service = self._populated(spec)
        snapshot = json.loads(json.dumps(service.snapshot()))
        restored = MonitoringService.restore(snapshot)
        assert {
            qid: [(e.doc_id, round(e.score, 9)) for e in result]
            for qid, result in restored.results().items()
        } == {
            qid: [(e.doc_id, round(e.score, 9)) for e in result]
            for qid, result in service.results().items()
        }
        assert type(restored.engine) is type(service.engine)
        assert restored.spec == service.spec

    def test_restored_service_keeps_streaming(self):
        service = self._populated(EngineSpec(window=WindowSpec.count(10)))
        restored = MonitoringService.restore(service.snapshot())
        # ids and the clock continue where the original left off
        assert restored.clock == service.clock
        changes = restored.ingest("market news market news")
        assert any(change.query_id == 0 for change in changes)

    def test_restored_vocabulary_keeps_term_ids(self):
        """A query subscribed *after* restore must match restored documents."""
        service = self._populated(EngineSpec(window=WindowSpec.count(10)))
        restored = MonitoringService.restore(service.snapshot())
        late = restored.subscribe("weather tomorrow", k=1)
        assert doc_ids(late.result()) == [1]

    def test_restore_accepts_bare_engine_snapshot(self):
        from repro.persistence import snapshot_engine

        service = self._populated(EngineSpec(window=WindowSpec.count(10)))
        restored = MonitoringService.restore(
            snapshot_engine(service.engine), vocabulary=service.vocabulary
        )
        assert doc_ids(restored.result(0)) == doc_ids(service.result(0))
        # the shared vocabulary keeps term ids stable for late text queries
        late = restored.subscribe("weather tomorrow", k=1)
        assert doc_ids(late.result()) == [1]

    def test_service_snapshot_rejects_extra_vocabulary(self):
        service = self._populated(EngineSpec(window=WindowSpec.count(10)))
        with pytest.raises(ConfigurationError):
            MonitoringService.restore(service.snapshot(), vocabulary=Vocabulary())

    def test_restore_accepts_bare_cluster_snapshot(self):
        from repro.cluster.persistence import snapshot_cluster

        spec = EngineSpec(kind="sharded", num_shards=2, window=WindowSpec.count(10))
        service = self._populated(spec)
        restored = MonitoringService.restore(snapshot_cluster(service.engine))
        assert isinstance(restored.engine, ShardedEngine)
        assert doc_ids(restored.result(0)) == doc_ids(service.result(0))

    def test_sharded_restore_preserves_placement(self):
        spec = EngineSpec(
            kind="sharded", num_shards=3, window=WindowSpec.count(10)
        )
        service = self._populated(spec)
        restored = MonitoringService.restore(service.snapshot())
        assert restored.engine.assignment() == service.engine.assignment()

    def test_handle_reattaches_after_restore(self):
        service = self._populated(EngineSpec(window=WindowSpec.count(10)))
        restored = MonitoringService.restore(service.snapshot())
        seen = []
        handle = restored.handle(0, on_change=seen.append)
        assert handle is restored.handle(0)
        restored.ingest("markets rally again on big news")
        assert seen and seen[0].query_id == 0

    def test_handle_rejects_replacing_existing_callback(self):
        service = MonitoringService()
        service.subscribe("market news", k=1, on_change=lambda alert: None)
        with pytest.raises(ConfigurationError):
            service.handle(0, on_change=lambda alert: None)
        with pytest.raises(ConfigurationError):
            service.handle(0, max_pending=5)

    def test_sharded_restore_keeps_cost_calibration(self):
        """The calibrated cost model must survive a service round-trip."""
        from repro.cluster.placement import CostModelPlacement
        from repro.service import PlacementCalibration

        spec = EngineSpec(
            kind="sharded",
            num_shards=2,
            window=WindowSpec.count(10),
            calibration=PlacementCalibration(dictionary_size=777, window_size=10),
        )
        service = self._populated(spec)
        restored = MonitoringService.restore(service.snapshot())
        placement = restored.engine.placement
        assert isinstance(placement, CostModelPlacement)
        assert placement.dictionary_size == 777
        assert placement.window_size == 10

    def test_unsupported_version_rejected(self):
        service = self._populated(EngineSpec(window=WindowSpec.count(10)))
        snapshot = service.snapshot()
        snapshot["version"] = 99
        with pytest.raises(ConfigurationError):
            MonitoringService.restore(snapshot)


class TestTimeBasedService:
    def test_advance_time_dispatches_expiry_alerts(self):
        service = MonitoringService(EngineSpec(window=WindowSpec.time(10.0)))
        handle = service.subscribe(ContinuousQuery(0, {1: 1.0}, k=1))
        service.ingest(make_document(0, {1: 0.9}, arrival_time=1.0))
        assert doc_ids(handle.result()) == [0]
        list(handle.changes())
        changes = service.advance_time(20.0)
        assert changes and changes[0].left
        [alert] = list(handle.changes())
        assert alert.document is None
        assert handle.result() == []
