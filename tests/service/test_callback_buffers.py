"""Bounded callback buffers on :class:`QueryHandle`.

A push subscriber that never drains ``handle.changes()`` must not grow the
service's memory forever: callback handles get a bounded pending buffer
(``DEFAULT_CALLBACK_MAX_PENDING`` unless overridden) that drops the
*oldest* undrained change once full, while the callback itself still sees
every alert.  Pure-poll handles stay unbounded unless bounded explicitly.
These semantics were documented but untested; this module pins them down,
including under the asynchronous ingestion path.
"""

import asyncio

from repro.query.query import ContinuousQuery
from repro.service import AsyncMonitoringService, MonitoringService
from repro.service.service import DEFAULT_CALLBACK_MAX_PENDING
from tests.conftest import make_document

#: the watched term and a query over it
TERM = 0


def watch_query(query_id=0, k=1):
    return ContinuousQuery(query_id=query_id, weights={TERM: 1.0}, k=k)


def escalating_documents(count):
    """Documents with strictly increasing scores: each one enters the top-1,
    so every ingest produces exactly one result change per subscribed query."""
    return [
        make_document(index, {TERM: 0.05 * (index + 1)}, arrival_time=float(index + 1))
        for index in range(count)
    ]


def fill_service(service, count):
    for document in escalating_documents(count):
        service.ingest(document)


class TestSlowConsumerOverflow:
    def test_oldest_changes_dropped_once_bound_is_reached(self):
        deliveries = []
        with MonitoringService() as service:
            handle = service.subscribe(
                watch_query(),
                on_change=deliveries.append,
                max_pending=5,
            )
            fill_service(service, 12)

            # The slow consumer finds only the newest five changes...
            assert handle.pending_changes == 5
            drained = list(handle.changes())
            assert [alert.document.doc_id for alert in drained] == [7, 8, 9, 10, 11]
            assert handle.pending_changes == 0
            # ...but the push callback saw every single one.
            assert [alert.document.doc_id for alert in deliveries] == list(range(12))

    def test_callback_handles_get_the_default_bound(self):
        with MonitoringService() as service:
            handle = service.subscribe(watch_query(), on_change=lambda alert: None)
            assert handle._pending.maxlen == DEFAULT_CALLBACK_MAX_PENDING

    def test_explicit_bound_wins_over_the_default(self):
        with MonitoringService() as service:
            handle = service.subscribe(
                watch_query(), on_change=lambda alert: None, max_pending=3
            )
            assert handle._pending.maxlen == 3

    def test_poll_handles_stay_unbounded_by_default(self):
        with MonitoringService() as service:
            handle = service.subscribe(watch_query())
            fill_service(service, 12)
            assert handle._pending.maxlen is None
            assert handle.pending_changes == 12
            assert len(list(handle.changes())) == 12

    def test_poll_handles_can_opt_into_a_bound(self):
        with MonitoringService() as service:
            handle = service.subscribe(watch_query(), max_pending=4)
            fill_service(service, 12)
            assert handle.pending_changes == 4
            drained = [alert.document.doc_id for alert in handle.changes()]
            assert drained == [8, 9, 10, 11]


class TestOverflowIsPerHandle:
    def test_one_slow_handle_does_not_affect_another(self):
        with MonitoringService() as service:
            slow = service.subscribe(
                watch_query(0), on_change=lambda alert: None, max_pending=2
            )
            fast = service.subscribe(watch_query(1))
            fill_service(service, 10)
            assert slow.pending_changes == 2
            assert fast.pending_changes == 10

    def test_buffered_changes_survive_unsubscribe(self):
        with MonitoringService() as service:
            handle = service.subscribe(
                watch_query(), on_change=lambda alert: None, max_pending=3
            )
            fill_service(service, 8)
            handle.unsubscribe()
            assert not handle.active
            # The bound still applies to what remained buffered.
            assert [alert.document.doc_id for alert in handle.changes()] == [5, 6, 7]


class TestAsyncPathHonoursTheSameBounds:
    def test_async_ingest_applies_identical_drop_semantics(self):
        async def run():
            deliveries = []
            async with AsyncMonitoringService(batch_size=4) as service:
                handle = await service.subscribe(
                    watch_query(),
                    on_change=deliveries.append,
                    max_pending=5,
                )
                await service.ingest(escalating_documents(12))
                return deliveries, [alert.document.doc_id for alert in handle.changes()]

        deliveries, drained = asyncio.run(run())
        assert drained == [7, 8, 9, 10, 11]
        assert [alert.document.doc_id for alert in deliveries] == list(range(12))
