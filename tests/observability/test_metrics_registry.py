"""The metrics registry: instruments, labels, collectors, exposition."""

from __future__ import annotations

import json
import threading

import pytest

from repro.observability import (
    DEFAULT_MS_BUCKETS,
    MetricsRegistry,
)


# --------------------------------------------------------------------------- #
# instruments
# --------------------------------------------------------------------------- #
def test_counter_increments_and_rejects_negative() -> None:
    registry = MetricsRegistry()
    counter = registry.counter("requests_total", "requests")
    counter.inc()
    counter.add(2.5)
    assert counter.value == pytest.approx(3.5)
    with pytest.raises(ValueError):
        counter.add(-1.0)


def test_gauge_moves_both_ways() -> None:
    registry = MetricsRegistry()
    gauge = registry.gauge("queue_depth")
    gauge.set(7.0)
    gauge.dec()
    gauge.inc(3.0)
    assert gauge.value == pytest.approx(9.0)


def test_histogram_buckets_and_quantiles() -> None:
    registry = MetricsRegistry()
    histogram = registry.histogram("latency_ms", buckets=(1.0, 10.0, 100.0))
    for value in (0.5, 5.0, 50.0, 500.0):
        histogram.observe(value)
    assert histogram.count == 4
    assert histogram.sum == pytest.approx(555.5)
    # The quantile is the upper bound of the covering bucket.
    assert histogram.quantile(0.25) == pytest.approx(1.0)
    assert histogram.quantile(0.5) == pytest.approx(10.0)
    # Observations past the last bound clamp to the last finite bound.
    assert histogram.quantile(1.0) == pytest.approx(100.0)


def test_labelled_family_children_are_independent() -> None:
    registry = MetricsRegistry()
    family = registry.counter("ops_total", labels=("op",))
    family.labels(op="insert").inc()
    family.labels(op="insert").inc()
    family.labels(op="delete").inc()
    assert family.labels(op="insert").value == pytest.approx(2.0)
    assert family.labels(op="delete").value == pytest.approx(1.0)


def test_label_validation() -> None:
    registry = MetricsRegistry()
    family = registry.counter("ops_total", labels=("op",))
    with pytest.raises(ValueError):
        family.labels(wrong="x")
    # An unlabelled proxy call on a labelled family is a usage bug.
    with pytest.raises(ValueError):
        family.inc()


def test_redeclaration_is_idempotent_but_kind_conflicts_raise() -> None:
    registry = MetricsRegistry()
    first = registry.counter("ops_total")
    second = registry.counter("ops_total")
    assert first is second
    with pytest.raises(ValueError):
        registry.gauge("ops_total")


# --------------------------------------------------------------------------- #
# collectors
# --------------------------------------------------------------------------- #
def test_collector_samples_are_summed_across_collectors() -> None:
    registry = MetricsRegistry()
    registry.register_collector(lambda: {("ops", (("op", "a"),)): 1.0})
    registry.register_collector(lambda: {("ops", (("op", "a"),)): 2.0, "plain": 5.0})
    collected = registry.snapshot()["collected"]
    assert collected["ops"] == [{"labels": {"op": "a"}, "value": 3.0}]
    assert collected["plain"] == [{"labels": {}, "value": 5.0}]


def test_collector_unregister() -> None:
    registry = MetricsRegistry()
    unregister = registry.register_collector(lambda: {"x": 1.0})
    unregister()
    assert registry.snapshot()["collected"] == {}


# --------------------------------------------------------------------------- #
# exposition
# --------------------------------------------------------------------------- #
def test_prometheus_rendering_is_cumulative_and_typed() -> None:
    registry = MetricsRegistry()
    registry.counter("requests_total", "requests", labels=("code",)).labels(
        code="200"
    ).add(3)
    histogram = registry.histogram("latency_ms", "latency", buckets=(1.0, 10.0))
    histogram.observe(0.5)
    histogram.observe(5.0)
    text = registry.to_prometheus()
    assert "# TYPE requests_total counter" in text
    assert 'requests_total{code="200"} 3' in text
    assert '# TYPE latency_ms histogram' in text
    assert 'latency_ms_bucket{le="1.0"} 1' in text
    assert 'latency_ms_bucket{le="10.0"} 2' in text
    assert 'latency_ms_bucket{le="+Inf"} 2' in text
    assert "latency_ms_sum 5.5" in text
    assert "latency_ms_count 2" in text


def test_snapshot_is_json_compatible() -> None:
    registry = MetricsRegistry()
    registry.counter("c").inc()
    registry.histogram("h").observe(2.0)
    registry.register_collector(lambda: {("g", (("k", "v"),)): 1.0})
    snapshot = registry.snapshot()
    assert json.loads(json.dumps(snapshot)) == snapshot


def test_reset_clears_every_family() -> None:
    registry = MetricsRegistry()
    registry.counter("c").inc()
    registry.histogram("h").observe(1.0)
    registry.reset()
    assert registry.counter("c").value == 0.0
    assert registry.histogram("h").count == 0


def test_default_buckets_are_sorted_and_strictly_increasing() -> None:
    assert list(DEFAULT_MS_BUCKETS) == sorted(DEFAULT_MS_BUCKETS)
    assert len(set(DEFAULT_MS_BUCKETS)) == len(DEFAULT_MS_BUCKETS)


def test_concurrent_increments_are_not_lost() -> None:
    registry = MetricsRegistry()
    counter = registry.counter("hits")

    def worker() -> None:
        for _ in range(1000):
            counter.inc()

    threads = [threading.Thread(target=worker) for _ in range(8)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    assert counter.value == pytest.approx(8000.0)
