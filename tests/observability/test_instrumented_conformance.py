"""Telemetry must not change behavior: instrumented runs are bit-identical.

Replays a differential-conformance tape (the same generator the fuzz
suite uses) twice per backend -- once with observability disabled, once
under :func:`repro.observability.runtime.observed` -- and requires the
two runs to agree *bit for bit* on every surface the fuzz suite compares:
change streams, top-k digests, operation counters, service snapshots and
per-query alert streams.  Instrumentation that reordered dispatch, took a
different ingest route, or perturbed a single counter fails here.
"""

from __future__ import annotations

import pytest

from repro.observability import runtime
from tests.conformance.test_differential_fuzz import (
    SHARDED,
    generate_tape,
    run_async,
    run_sync,
)

SEED = 1101  # a tie-free tape: every comparison is exact


def _as_comparable(log):
    return {
        "changes": log.changes,
        "digests": log.digests,
        "counters": log.counters,
        "snapshots": log.snapshots,
        "alerts": dict(log.alerts),
    }


@pytest.mark.parametrize("engine_name", ["ita", SHARDED])
def test_sync_replay_is_bit_identical_under_instrumentation(engine_name) -> None:
    tape = generate_tape(SEED, tie_heavy=False, num_ops=220)
    plain = run_sync(engine_name, tape)
    with runtime.observed():
        instrumented = run_sync(engine_name, tape)
    assert _as_comparable(instrumented) == _as_comparable(plain)


def test_async_replay_is_bit_identical_under_instrumentation() -> None:
    tape = generate_tape(SEED, tie_heavy=False, num_ops=220)
    plain = run_async(SHARDED, tape)
    with runtime.observed():
        instrumented = run_async(SHARDED, tape)
    assert _as_comparable(instrumented) == _as_comparable(plain)


def test_instrumented_replay_actually_recorded_telemetry() -> None:
    """Guard against the guard: the observed run must produce metrics."""
    tape = generate_tape(SEED, tie_heavy=False, num_ops=120)
    with runtime.observed() as registry:
        run_sync("ita", tape)
        families = registry.snapshot()["families"]
    assert families["repro_service_ingest_documents_total"]["samples"][0]["value"] > 0
    assert families["repro_service_subscribe_total"]["samples"][0]["value"] > 0
    stages = {
        sample["labels"]["stage"]
        for sample in families["repro_engine_stage_ms_total"]["samples"]
    }
    assert {"expire", "arrival"} <= stages
