"""Per-layer instrumentation: the right families appear with real values."""

from __future__ import annotations

import asyncio

from repro.observability import runtime
from repro.service import (
    AsyncMonitoringService,
    EngineSpec,
    MonitoringService,
    WindowSpec,
)

DOCS = [
    "market rally interest rates",
    "storm warning coastal flood",
    "tech earnings beat expectations",
    "inflation data rate hike",
    "coast bank defence towns",
    "cuts cooling stream query",
]


def _family_value(snapshot, name, **labels):
    for sample in snapshot["families"][name]["samples"]:
        if sample["labels"] == labels:
            return sample
    raise AssertionError(f"no sample of {name} with labels {labels}")


# --------------------------------------------------------------------------- #
# the synchronous service
# --------------------------------------------------------------------------- #
def test_service_counters_and_alert_lag() -> None:
    with runtime.observed():
        with MonitoringService(
            EngineSpec(kind="ita", window=WindowSpec.count(16))
        ) as service:
            alerts = []
            service.subscribe("market rates rally", k=2, on_change=alerts.append)
            service.ingest(DOCS)
            service.ingest(DOCS)
            snapshot = service.metrics()
            prometheus = service.metrics_prometheus()

        assert _family_value(snapshot, "repro_service_subscribe_total")["value"] == 1.0
        assert (
            _family_value(snapshot, "repro_service_ingest_calls_total")["value"] == 2.0
        )
        assert (
            _family_value(snapshot, "repro_service_ingest_documents_total")["value"]
            == float(2 * len(DOCS))
        )
        assert _family_value(snapshot, "repro_service_ingest_ms")["count"] == 2
        assert alerts, "the standing query must have fired"
        assert (
            _family_value(snapshot, "repro_service_alerts_delivered_total")["value"]
            == float(len(alerts))
        )
        assert _family_value(snapshot, "repro_service_alert_delivery_lag_ms")["count"] > 0

        # The engine operation counters ride the scrape-time collector.
        ops = {
            tuple(sample["labels"].items()): sample["value"]
            for sample in snapshot["collected"]["repro_engine_ops_total"]
        }
        assert ops[(("op", "arrivals"),)] == float(2 * len(DOCS))
        assert "repro_service_ingest_ms_bucket" in prometheus
        assert 'repro_engine_ops_total{op="arrivals"}' in prometheus


def test_service_metrics_survive_registry_swap() -> None:
    """enable() swaps the registry; the collector must re-register."""
    with runtime.observed():
        with MonitoringService(
            EngineSpec(kind="ita", window=WindowSpec.count(16))
        ) as service:
            service.ingest(DOCS)
            runtime.enable()  # fresh registry mid-flight
            service.ingest(DOCS)
            snapshot = service.metrics()
            assert (
                _family_value(snapshot, "repro_service_ingest_calls_total")["value"]
                == 1.0
            )
            # The collector reports cumulative engine counters regardless.
            ops = {
                tuple(sample["labels"].items()): sample["value"]
                for sample in snapshot["collected"]["repro_engine_ops_total"]
            }
            assert ops[(("op", "arrivals"),)] == float(2 * len(DOCS))


def test_engine_stage_timers_cover_rare_paths_too() -> None:
    with runtime.observed() as registry:
        with MonitoringService(
            EngineSpec(kind="ita", window=WindowSpec.count(4))
        ) as service:
            service.subscribe("market rates rally storm", k=3)
            for _ in range(12):
                service.ingest(DOCS)
        stages = {
            sample["labels"]["stage"]: sample["value"]
            for sample in registry.snapshot()["families"][
                "repro_engine_stage_ms_total"
            ]["samples"]
        }
    # expire/arrival accrue on every batch; rollup fires once the window
    # turns over with a registered query.
    assert stages["expire"] >= 0.0
    assert stages["arrival"] > 0.0
    assert "rollup" in stages


# --------------------------------------------------------------------------- #
# the async service and pipeline
# --------------------------------------------------------------------------- #
def test_async_and_pipeline_families() -> None:
    async def scenario():
        async with AsyncMonitoringService(
            EngineSpec(kind="sharded", num_shards=2, window=WindowSpec.count(16)),
            max_workers=2,
            queue_depth=2,
            batch_size=2,
        ) as service:
            await service.subscribe("market rates rally", k=2)
            for _ in range(4):
                await service.ingest(DOCS)
            await service.results()
            # Captured inside: aclose unregisters the pipeline collector.
            return runtime.metrics.snapshot()

    with runtime.observed():
        snapshot = asyncio.run(scenario())

    assert (
        _family_value(snapshot, "repro_async_ingest_documents_total")["value"]
        == float(4 * len(DOCS))
    )
    assert _family_value(snapshot, "repro_async_ingest_calls_total")["value"] == 4.0
    assert _family_value(snapshot, "repro_async_batch_delivery_lag_ms")["count"] > 0

    collected = snapshot["collected"]
    events = sum(entry["value"] for entry in collected["repro_pipeline_events_total"])
    assert events == float(4 * len(DOCS))
    lanes = {
        entry["labels"]["lane"] for entry in collected["repro_pipeline_lane_batches_total"]
    }
    assert lanes == {"0", "1"}
    for entry in collected["repro_pipeline_lane_utilization"]:
        assert 0.0 <= entry["value"] <= 1.0


def test_pipeline_trace_spans_cross_threads() -> None:
    async def scenario():
        async with AsyncMonitoringService(
            EngineSpec(kind="sharded", num_shards=2, window=WindowSpec.count(16)),
            max_workers=2,
            batch_size=3,
        ) as service:
            await service.ingest(DOCS)
            await service.results()

    with runtime.observed():
        asyncio.run(scenario())
        spans = runtime.tracer.spans()

    submits = [span for span in spans if span.name == "pipeline.submit"]
    lanes = [span for span in spans if span.name == "pipeline.lane"]
    assert submits and lanes
    submit_ids = {span.span_id for span in submits}
    # Every lane span carries its submitting batch as the parent, even
    # though it ran on a pool thread -- explicit context propagation.
    assert all(span.parent_id in submit_ids for span in lanes)


# --------------------------------------------------------------------------- #
# durability: WAL, checkpoint, recovery
# --------------------------------------------------------------------------- #
def test_wal_checkpoint_and_recovery_families(tmp_path) -> None:
    from repro import DurabilityPolicy

    spec = EngineSpec(
        kind="ita",
        window=WindowSpec.count(16),
        durability=DurabilityPolicy(fsync="interval", fsync_interval=4, checkpoint_every=8),
    )
    with runtime.observed() as registry:
        service = MonitoringService.open(tmp_path, spec)
        service.subscribe("market rates rally", k=2)
        for _ in range(4):
            service.ingest(DOCS)
        service.close()
        recovered = MonitoringService.open(tmp_path)
        report = recovered.last_recovery
        recovered.close()
        snapshot = registry.snapshot()

    assert _family_value(snapshot, "repro_wal_appends_total")["value"] > 0
    assert _family_value(snapshot, "repro_wal_bytes_total")["value"] > 0
    assert _family_value(snapshot, "repro_wal_fsync_ms")["count"] > 0
    assert _family_value(snapshot, "repro_wal_checkpoints_total")["value"] > 0
    assert _family_value(snapshot, "repro_wal_checkpoint_ms")["count"] > 0
    assert _family_value(snapshot, "repro_recovery_total")["value"] == 1.0
    phases = {
        sample["labels"]["phase"]
        for sample in snapshot["families"]["repro_recovery_phase_ms"]["samples"]
    }
    assert phases == {"manifest", "checkpoint_load", "restore", "replay"}
    # The report carries the same breakdown for offline consumers.
    assert set(report.phase_ms) == phases
    assert sum(report.phase_ms.values()) <= report.duration_ms + 1.0
    assert report.as_dict()["phase_ms"].keys() == report.phase_ms.keys()


def test_disabled_mode_records_nothing(tmp_path) -> None:
    assert runtime.active is False
    before_families = dict(runtime.metrics.snapshot()["families"])
    with MonitoringService(
        EngineSpec(kind="ita", window=WindowSpec.count(16))
    ) as service:
        service.subscribe("market rates rally", k=2)
        service.ingest(DOCS)
    assert runtime.metrics.snapshot()["families"].keys() == before_families.keys()
    assert len(runtime.tracer) == 0
