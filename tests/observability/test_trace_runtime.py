"""Span tracing, the slow-op log, and the runtime on/off switch."""

from __future__ import annotations

import json

from repro.observability import (
    NULL_SPAN,
    SlowOpLog,
    Tracer,
    note_slow,
    runtime,
    trace_span,
)


# --------------------------------------------------------------------------- #
# the tracer
# --------------------------------------------------------------------------- #
def test_nested_spans_record_parentage() -> None:
    tracer = Tracer()
    with tracer.span("outer") as outer:
        with tracer.span("inner", parent=outer) as inner:
            pass
    spans = tracer.spans()
    assert [span.name for span in spans] == ["inner", "outer"]  # finish order
    by_name = {span.name: span for span in spans}
    assert by_name["inner"].parent_id == by_name["outer"].span_id
    assert by_name["outer"].parent_id is None
    assert all(span.duration_us is not None for span in spans)


def test_explicit_cross_context_propagation() -> None:
    """A span object can be handed across threads/queues as the parent."""
    tracer = Tracer()
    with tracer.span("submit") as parent:
        pass
    # The consumer side constructs its child from the carried parent.
    with tracer.span("lane", parent=parent) as child:
        pass
    assert child.parent_id == parent.span_id


def test_ring_buffer_drops_oldest_and_counts() -> None:
    tracer = Tracer(capacity=4)
    for index in range(10):
        with tracer.span(f"s{index}"):
            pass
    assert len(tracer) == 4
    assert [span.name for span in tracer.spans()] == ["s6", "s7", "s8", "s9"]
    assert tracer.dropped == 6


def test_chrome_trace_export_shape() -> None:
    tracer = Tracer()
    with tracer.span("outer", events=3) as outer:
        with tracer.span("inner", parent=outer):
            pass
    document = json.loads(tracer.to_chrome_json())
    events = document["traceEvents"]
    assert len(events) == 2
    assert all(event["ph"] == "X" for event in events)
    # Sorted by start timestamp: outer began first.
    assert [event["name"] for event in events] == ["outer", "inner"]
    outer_event, inner_event = events
    assert inner_event["args"]["parent_id"] == outer_event["args"]["span_id"]
    assert outer_event["args"]["events"] == 3
    for event in events:
        assert set(event) >= {"name", "ph", "ts", "dur", "pid", "tid", "args"}


def test_trace_span_is_inert_while_disabled() -> None:
    assert runtime.active is False
    with trace_span("ignored") as span:
        assert span is NULL_SPAN
    # The null span absorbs attribute setting without recording.
    span.set(key="value")


def test_trace_span_records_while_enabled() -> None:
    with runtime.observed():
        with trace_span("visible", batch=1) as span:
            assert span is not NULL_SPAN
        assert [s.name for s in runtime.tracer.spans()] == ["visible"]
    assert runtime.active is False


# --------------------------------------------------------------------------- #
# the slow-op log
# --------------------------------------------------------------------------- #
def test_slowlog_threshold_and_capacity() -> None:
    log = SlowOpLog(threshold_ms=10.0, capacity=2)
    assert log.note("fast", 5.0) is False
    assert log.note("slow-1", 15.0) is True
    assert log.note("slow-2", 20.0, detail="x") is True
    assert log.note("slow-3", 25.0) is True
    entries = log.entries()
    assert [entry.op for entry in entries] == ["slow-2", "slow-3"]
    assert log.total == 3  # noted slow ops, including the evicted one
    assert entries[0].detail == {"detail": "x"}


def test_note_slow_is_inert_while_disabled() -> None:
    assert note_slow("anything", 10_000.0) is False


def test_note_slow_records_while_enabled() -> None:
    with runtime.observed(slow_threshold_ms=1.0):
        assert note_slow("op", 2.0, lsn=7) is True
        entries = runtime.slowlog.as_dicts()
    assert len(entries) == 1
    assert entries[0]["op"] == "op"
    assert entries[0]["lsn"] == 7  # detail keys are flattened into the dict


# --------------------------------------------------------------------------- #
# the runtime switch
# --------------------------------------------------------------------------- #
def test_enable_installs_fresh_singletons() -> None:
    try:
        first = runtime.enable()
        first.counter("x").inc()
        second = runtime.enable()
        assert second is not first
        assert second.counter("x").value == 0.0
    finally:
        runtime.disable()


def test_enable_reuse_keeps_state() -> None:
    try:
        first = runtime.enable()
        first.counter("x").inc()
        second = runtime.enable(reuse=True)
        assert second is first
        assert second.counter("x").value == 1.0
    finally:
        runtime.disable()


def test_observed_restores_previous_state() -> None:
    before = (runtime.active, runtime.metrics, runtime.tracer, runtime.slowlog)
    with runtime.observed() as registry:
        assert runtime.active is True
        assert runtime.metrics is registry
    assert (runtime.active, runtime.metrics, runtime.tracer, runtime.slowlog) == before


def test_observed_nests() -> None:
    with runtime.observed() as outer_registry:
        outer_registry.counter("depth").inc()
        with runtime.observed() as inner_registry:
            assert inner_registry is not outer_registry
            assert runtime.metrics is inner_registry
        assert runtime.metrics is outer_registry
        assert outer_registry.counter("depth").value == 1.0
    assert runtime.active is False
