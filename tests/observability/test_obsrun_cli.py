"""The ``obs`` CLI workload, the bench history trajectory, the dashboard."""

from __future__ import annotations

import json

from repro.observability import runtime
from repro.workloads.cli import main
from repro.workloads.obsrun import REQUIRED_FAMILIES, run_observed_workload
from repro.workloads.perfjson import (
    HISTORY_FILENAME,
    append_history,
    history_entry,
    read_history,
)
from repro.workloads.reporting import render_perf_dashboard

_BENCH_DOC = {
    "schema": "repro-bench/4",
    "scale": "smoke",
    "batch_size": 64,
    "results": [
        {
            "workload": "figure3a",
            "engine": "ita",
            "mode": "batched",
            "docs_per_sec": 9000.0,
            "concurrency": None,
        },
        {
            "workload": "cluster-scaling",
            "engine": "sharded-ita",
            "mode": "async",
            "docs_per_sec": 4000.0,
            "concurrency": 4,
        },
    ],
    "summary": {
        "figure3a_ita_batched_over_sequential": 1.3,
        "figure3a_ita_instrumented_over_batched": 1.02,
    },
}


# --------------------------------------------------------------------------- #
# the obs workload
# --------------------------------------------------------------------------- #
def test_obs_workload_exposes_every_required_family() -> None:
    out = run_observed_workload(documents=96)
    for family in REQUIRED_FAMILIES:
        assert family in out["prometheus"], family
    trace = json.loads(out["chrome_trace"])
    assert trace["traceEvents"], "the instrumented run must record spans"
    assert set(out["durable"]["recovery_phase_ms"]) == {
        "manifest",
        "checkpoint_load",
        "restore",
        "replay",
    }
    assert out["async"]["events"] >= 96
    # The observed scope must not leak.
    assert runtime.active is False


def test_obs_cli_prometheus_and_trace(tmp_path, capsys) -> None:
    trace_path = tmp_path / "trace.json"
    assert main(["obs", "--quiet", "--trace-out", str(trace_path)]) == 0
    printed = capsys.readouterr().out
    for family in REQUIRED_FAMILIES:
        assert family in printed, family
    assert json.loads(trace_path.read_text())["traceEvents"]


def test_obs_cli_json_format(capsys) -> None:
    assert main(["obs", "--quiet", "--format", "json"]) == 0
    document = json.loads(capsys.readouterr().out)
    assert "repro_service_ingest_ms" in document["snapshot"]["families"]
    assert "repro_pipeline_events_total" in document["snapshot"]["collected"]


# --------------------------------------------------------------------------- #
# the bench history trajectory
# --------------------------------------------------------------------------- #
def test_history_entry_condenses_the_document() -> None:
    entry = history_entry(_BENCH_DOC, timestamp="2026-08-08T00:00:00+00:00")
    assert entry["ts"] == "2026-08-08T00:00:00+00:00"
    assert entry["schema"] == "repro-bench/4"
    assert entry["docs_per_sec"] == {
        "figure3a/ita/batched": 9000.0,
        "cluster-scaling/sharded-ita/async@4": 4000.0,
    }
    assert entry["summary"]["figure3a_ita_instrumented_over_batched"] == 1.02


def test_append_and_read_history_roundtrip(tmp_path) -> None:
    path = append_history(_BENCH_DOC, tmp_path, timestamp="2026-08-08T00:00:00+00:00")
    append_history(_BENCH_DOC, tmp_path, timestamp="2026-08-08T01:00:00+00:00")
    assert path.name == HISTORY_FILENAME
    entries = read_history(tmp_path)
    assert [entry["ts"] for entry in entries] == [
        "2026-08-08T00:00:00+00:00",
        "2026-08-08T01:00:00+00:00",
    ]


def test_read_history_of_missing_directory_is_empty(tmp_path) -> None:
    assert read_history(tmp_path / "nowhere") == []


def test_read_history_rejects_malformed_lines(tmp_path) -> None:
    (tmp_path / HISTORY_FILENAME).write_text('{"ts": "x"}\nnot json\n')
    import pytest

    with pytest.raises(ValueError, match=":2:"):
        read_history(tmp_path)


# --------------------------------------------------------------------------- #
# the markdown dashboard
# --------------------------------------------------------------------------- #
def test_dashboard_renders_trend_and_throughput() -> None:
    older = history_entry(_BENCH_DOC, timestamp="2026-08-01T00:00:00+00:00")
    newer = history_entry(_BENCH_DOC, timestamp="2026-08-08T00:00:00+00:00")
    newer["summary"]["figure3a_ita_batched_over_sequential"] = 1.43
    text = render_perf_dashboard([older, newer])
    assert text.startswith("# Performance dashboard")
    assert "## Headline ratios" in text
    assert "## Trend" in text
    assert "`figure3a_ita_instrumented_over_batched` | 1.0200" in text
    assert "+10.0%" in text  # 1.3 -> 1.43
    assert "`figure3a/ita/batched` | 9,000" in text


def test_dashboard_renders_metrics_section() -> None:
    with runtime.observed() as registry:
        registry.counter("repro_demo_total", "demo").inc(3)
        registry.histogram("repro_demo_ms", "demo").observe(2.0)
        snapshot = registry.snapshot()
    entry = history_entry(_BENCH_DOC, timestamp="2026-08-08T00:00:00+00:00")
    text = render_perf_dashboard([entry], metrics=snapshot)
    assert "## Telemetry snapshot" in text
    assert "`repro_demo_total`" in text
    assert "count=1" in text


def test_dashboard_handles_empty_history() -> None:
    text = render_perf_dashboard([])
    assert "No benchmark history yet" in text
