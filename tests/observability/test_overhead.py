"""The telemetry-overhead budget: instrumented figure-3a ingest <= 5%.

The acceptance bound the benchmark suite publishes as
``summary["figure3a_ita_instrumented_over_batched"]`` is enforced here
with the same hot path (``prepare_engine`` + ``process_batch`` chunks on
the figure-3a headline point), so a PR that regresses the disabled-mode
guard or bloats the per-batch instrumentation fails in the tier-1 suite,
not just in CI's perf job.

Timing on a shared box is noisy, so the measurement is deliberately
defensive: the smoke workload is enlarged to 4000 measured events, the
plain and instrumented passes run interleaved (both see the same
scheduler drift), the per-chunk times are reduced with an elementwise
minimum across repeats (a jitter spike in one repeat cannot poison the
estimate), and the bound is checked on the best of three attempts.  The
true overhead after the cached-child refactor sits around 2-3%.
"""

from __future__ import annotations

import time
from dataclasses import replace

from repro.observability import runtime
from repro.workloads.experiments import figure_3a
from repro.workloads.generators import build_workload
from repro.workloads.perfjson import _point_by_label
from repro.workloads.runner import prepare_engine, run_point

OVERHEAD_BOUND = 1.05
REPEATS = 5  # interleaved plain/instrumented passes per attempt
ATTEMPTS = 3  # bound is checked on the best attempt
MEASURED_EVENTS = 4000
BATCH_SIZE = 64


def _figure3a_point():
    definition = figure_3a("smoke")
    point = _point_by_label(definition, "n=10")
    return replace(point, config=replace(point.config, measured_events=MEASURED_EVENTS))


def _chunk_times(point, workload, instrumented: bool) -> list:
    """Per-chunk wall times for one full pass over the measured stream."""
    engine = prepare_engine("ita", point, workload)
    measured = workload.measured
    times = []

    def run():
        for start in range(0, len(measured), BATCH_SIZE):
            chunk = measured[start : start + BATCH_SIZE]
            began = time.perf_counter()
            engine.process_batch(chunk)
            times.append(time.perf_counter() - began)

    if instrumented:
        with runtime.observed():
            run()
    else:
        run()
    return times


def _overhead_ratio(point, workload) -> float:
    envelope_plain = None
    envelope_instr = None
    for _ in range(REPEATS):
        plain = _chunk_times(point, workload, instrumented=False)
        instr = _chunk_times(point, workload, instrumented=True)
        envelope_plain = (
            plain
            if envelope_plain is None
            else [min(a, b) for a, b in zip(envelope_plain, plain)]
        )
        envelope_instr = (
            instr
            if envelope_instr is None
            else [min(a, b) for a, b in zip(envelope_instr, instr)]
        )
    total_plain = sum(envelope_plain)
    assert total_plain > 0
    return sum(envelope_instr) / total_plain


def test_instrumented_figure3a_overhead_within_budget() -> None:
    point = _figure3a_point()
    workload = build_workload(point.config)
    # warm the allocator, the import graph and the child-instrument cache
    _chunk_times(point, workload, instrumented=False)
    _chunk_times(point, workload, instrumented=True)

    best = None
    for _ in range(ATTEMPTS):
        ratio = _overhead_ratio(point, workload)
        if best is None or ratio < best:
            best = ratio
        if best <= OVERHEAD_BOUND:
            break
    assert best <= OVERHEAD_BOUND, (
        f"instrumented figure-3a ingest is {best:.4f}x the batched hot path "
        f"(budget {OVERHEAD_BOUND}x)"
    )


def test_disabled_mode_is_effectively_free() -> None:
    """With observability off the hot path must be indistinguishable.

    Not a timing assertion (that would be noise) -- a structural one: the
    disabled-mode branch must not touch the registry, tracer or slowlog.
    """
    definition = figure_3a("smoke")
    point = _point_by_label(definition, "n=10")
    workload = build_workload(point.config)
    assert runtime.active is False
    families_before = set(runtime.metrics.snapshot()["families"])
    spans_before = len(runtime.tracer)
    run_point(point, ["ita"], workload=workload, batch_size=BATCH_SIZE)
    assert set(runtime.metrics.snapshot()["families"]) == families_before
    assert len(runtime.tracer) == spans_before
    assert len(runtime.slowlog) == 0
