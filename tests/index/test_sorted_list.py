"""Tests for the block-based sorted container, including property tests."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.index.sorted_list import SortedKeyList


class TestBasics:
    def test_empty(self):
        lst = SortedKeyList()
        assert len(lst) == 0
        assert not lst
        assert list(lst) == []
        assert 1 not in lst

    def test_block_size_validation(self):
        with pytest.raises(ValueError):
            SortedKeyList(block_size=2)

    def test_bulk_construction_is_sorted(self):
        lst = SortedKeyList([5, 1, 4, 2, 3])
        assert list(lst) == [1, 2, 3, 4, 5]

    def test_add_keeps_order(self):
        lst = SortedKeyList()
        for value in (3, 1, 2, 2, 0):
            lst.add(value)
        assert list(lst) == [0, 1, 2, 2, 3]

    def test_duplicates_allowed(self):
        lst = SortedKeyList([1, 1, 1])
        assert len(lst) == 3

    def test_remove_one_occurrence(self):
        lst = SortedKeyList([1, 1, 2])
        lst.remove(1)
        assert list(lst) == [1, 2]

    def test_remove_missing_raises(self):
        with pytest.raises(ValueError):
            SortedKeyList([1, 2]).remove(3)

    def test_discard(self):
        lst = SortedKeyList([1, 2])
        assert lst.discard(1) is True
        assert lst.discard(1) is False
        assert list(lst) == [2]

    def test_clear(self):
        lst = SortedKeyList([1, 2, 3])
        lst.clear()
        assert len(lst) == 0
        lst.add(5)
        assert list(lst) == [5]

    def test_first_last(self):
        lst = SortedKeyList([3, 1, 2])
        assert lst.first() == 1
        assert lst.last() == 3

    def test_first_last_empty_raise(self):
        with pytest.raises(IndexError):
            SortedKeyList().first()
        with pytest.raises(IndexError):
            SortedKeyList().last()

    def test_contains(self):
        lst = SortedKeyList([(1, "a"), (2, "b")])
        assert (1, "a") in lst
        assert (1, "b") not in lst


class TestOrderedQueries:
    @pytest.fixture
    def lst(self):
        return SortedKeyList([1, 3, 5, 7, 9])

    def test_find_ge(self, lst):
        assert lst.find_ge(4) == 5
        assert lst.find_ge(5) == 5
        assert lst.find_ge(10) is None

    def test_find_gt(self, lst):
        assert lst.find_gt(5) == 7
        assert lst.find_gt(9) is None

    def test_find_lt(self, lst):
        assert lst.find_lt(5) == 3
        assert lst.find_lt(1) is None
        assert lst.find_lt(100) == 9

    def test_find_le(self, lst):
        assert lst.find_le(5) == 5
        assert lst.find_le(4) == 3
        assert lst.find_le(0) is None

    def test_irange_full(self, lst):
        assert list(lst.irange()) == [1, 3, 5, 7, 9]

    def test_irange_minimum_inclusive(self, lst):
        assert list(lst.irange(minimum=5)) == [5, 7, 9]

    def test_irange_minimum_exclusive(self, lst):
        assert list(lst.irange(minimum=5, inclusive=False)) == [7, 9]

    def test_irange_maximum(self, lst):
        assert list(lst.irange(maximum=5)) == [1, 3, 5]

    def test_irange_window(self, lst):
        assert list(lst.irange(minimum=3, maximum=7)) == [3, 5, 7]

    def test_irange_empty_result(self, lst):
        assert list(lst.irange(minimum=100)) == []

    def test_count_le(self, lst):
        assert lst.count_le(0) == 0
        assert lst.count_le(5) == 3
        assert lst.count_le(9) == 5

    def test_to_list(self, lst):
        assert lst.to_list() == [1, 3, 5, 7, 9]


class TestBlockSplitting:
    def test_many_items_split_into_blocks_and_stay_sorted(self):
        lst = SortedKeyList(block_size=8)
        values = list(range(200))
        random.Random(3).shuffle(values)
        for value in values:
            lst.add(value)
        assert list(lst) == list(range(200))
        lst.check_invariants()

    def test_interleaved_adds_and_removes(self):
        lst = SortedKeyList(block_size=8)
        rng = random.Random(5)
        reference = []
        for step in range(2000):
            if reference and rng.random() < 0.45:
                victim = rng.choice(reference)
                reference.remove(victim)
                lst.remove(victim)
            else:
                value = rng.randint(0, 100)
                reference.append(value)
                lst.add(value)
        assert list(lst) == sorted(reference)
        lst.check_invariants()


class _Model:
    """Reference model for hypothesis-based stateful comparison."""

    def __init__(self):
        self.items = []

    def add(self, item):
        self.items.append(item)
        self.items.sort()

    def remove(self, item):
        self.items.remove(item)


class TestPropertyBased:
    @given(st.lists(st.integers(min_value=-50, max_value=50)))
    @settings(max_examples=150, deadline=None)
    def test_matches_sorted_builtin(self, values):
        lst = SortedKeyList(block_size=4)
        for value in values:
            lst.add(value)
        assert list(lst) == sorted(values)
        lst.check_invariants()

    @given(
        st.lists(
            st.tuples(st.sampled_from(["add", "remove"]), st.integers(0, 20)),
            max_size=200,
        )
    )
    @settings(max_examples=150, deadline=None)
    def test_add_remove_sequence_matches_model(self, operations):
        lst = SortedKeyList(block_size=4)
        model = _Model()
        for op, value in operations:
            if op == "add":
                lst.add(value)
                model.add(value)
            else:
                if value in model.items:
                    lst.remove(value)
                    model.remove(value)
                else:
                    with pytest.raises(ValueError):
                        lst.remove(value)
        assert list(lst) == model.items
        lst.check_invariants()

    @given(
        st.lists(st.integers(-30, 30), min_size=1, max_size=80),
        st.integers(-35, 35),
    )
    @settings(max_examples=150, deadline=None)
    def test_find_queries_match_linear_scan(self, values, probe):
        lst = SortedKeyList(values, block_size=4)
        ordered = sorted(values)
        expected_ge = next((v for v in ordered if v >= probe), None)
        expected_gt = next((v for v in ordered if v > probe), None)
        expected_lt = next((v for v in reversed(ordered) if v < probe), None)
        expected_le = next((v for v in reversed(ordered) if v <= probe), None)
        assert lst.find_ge(probe) == expected_ge
        assert lst.find_gt(probe) == expected_gt
        assert lst.find_lt(probe) == expected_lt
        assert lst.find_le(probe) == expected_le
        assert lst.count_le(probe) == sum(1 for v in values if v <= probe)

    @given(
        st.lists(st.integers(-30, 30), min_size=1, max_size=80),
        st.integers(-35, 35),
        st.integers(-35, 35),
    )
    @settings(max_examples=150, deadline=None)
    def test_irange_matches_linear_scan(self, values, low, high):
        lst = SortedKeyList(values, block_size=4)
        expected = [v for v in sorted(values) if low <= v <= high]
        assert list(lst.irange(minimum=low, maximum=high)) == expected
