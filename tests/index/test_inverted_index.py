"""Tests for the whole-document inverted index."""

import pytest

from repro.exceptions import DuplicateDocumentError, UnknownDocumentError
from repro.index.inverted_index import InvertedIndex
from tests.conftest import make_document


@pytest.fixture
def index():
    index = InvertedIndex()
    index.insert_document(make_document(0, {11: 0.10, 20: 0.03}, arrival_time=0.0))
    index.insert_document(make_document(1, {11: 0.08, 20: 0.06}, arrival_time=1.0))
    index.insert_document(make_document(2, {20: 0.08}, arrival_time=2.0))
    return index


class TestInsertion:
    def test_insert_returns_posting_count(self):
        index = InvertedIndex()
        inserted = index.insert_document(make_document(0, {1: 0.5, 2: 0.5, 3: 0.5}))
        assert inserted == 3
        assert len(index) == 1
        assert index.posting_count() == 3

    def test_lists_are_impact_ordered(self, index):
        assert [e.doc_id for e in index.inverted_list(11)] == [0, 1]
        assert [e.doc_id for e in index.inverted_list(20)] == [2, 1, 0]

    def test_duplicate_document_rejected(self, index):
        with pytest.raises(DuplicateDocumentError):
            index.insert_document(make_document(0, {5: 0.5}))

    def test_document_store_holds_full_documents(self, index):
        assert index.documents.get(1).composition.weight(20) == pytest.approx(0.06)
        assert 2 in index


class TestRemoval:
    def test_remove_updates_every_list(self, index):
        document, removed = index.remove_document(1)
        assert document.doc_id == 1
        assert removed == 2
        assert [e.doc_id for e in index.inverted_list(11)] == [0]
        assert [e.doc_id for e in index.inverted_list(20)] == [2, 0]
        assert 1 not in index

    def test_remove_unknown_document(self, index):
        with pytest.raises(UnknownDocumentError):
            index.remove_document(99)

    def test_empty_lists_without_queries_are_reclaimed(self):
        index = InvertedIndex()
        index.insert_document(make_document(0, {5: 0.5}))
        index.remove_document(0)
        assert index.existing_list(5) is None

    def test_empty_lists_with_registered_queries_are_kept(self):
        index = InvertedIndex()
        index.threshold_tree(5).register(0, 0.0)
        index.insert_document(make_document(0, {5: 0.5}))
        index.remove_document(0)
        assert index.existing_list(5) is not None
        assert len(index.existing_list(5)) == 0


class TestAccessors:
    def test_inverted_list_created_on_demand(self):
        index = InvertedIndex()
        assert index.existing_list(3) is None
        lst = index.inverted_list(3)
        assert index.existing_list(3) is lst

    def test_threshold_tree_created_on_demand(self):
        index = InvertedIndex()
        assert index.existing_tree(3) is None
        tree = index.threshold_tree(3)
        assert index.existing_tree(3) is tree

    def test_terms_and_list_lengths(self, index):
        assert set(index.terms()) == {11, 20}
        assert index.list_lengths() == {11: 2, 20: 3}

    def test_check_invariants_passes_on_consistent_index(self, index):
        index.check_invariants()

    def test_check_invariants_detects_corruption(self, index):
        # Simulate corruption: remove a posting behind the index's back.
        index.inverted_list(11).delete(0)
        with pytest.raises(AssertionError):
            index.check_invariants()
