"""Unit tests for the storage-backend seam and the columnar containers.

The conformance suites prove whole-engine parity; these tests pin the
layer underneath -- the backend registry contract, the drop-in
equivalence of the columnar containers against their bisect twins under
randomised tie-heavy op sequences, the tombstone/compaction lifecycle of
the postings columns, and the virtual cold-list semantics of the index.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.documents.document import CompositionList, Document, StreamedDocument
from repro.exceptions import (
    ConfigurationError,
    DuplicateDocumentError,
    UnknownDocumentError,
    UnknownQueryError,
)
from repro.index import backend as backend_module
from repro.index.backend import (
    BisectStorageBackend,
    StorageBackend,
    register_storage_backend,
    storage_backend,
    storage_backends,
)
from repro.index.columnar.postings import TOMBSTONE, ColumnarInvertedList
from repro.index.columnar.thresholds import ColumnarThresholdTree
from repro.index.inverted_index import InvertedIndex
from repro.index.inverted_list import InvertedList
from repro.index.threshold_tree import ThresholdTree

#: few distinct values -> long equal-weight runs, the regime where the
#: tombstoned columns and the bisect tuples are most likely to disagree
TIE_WEIGHTS = [0.1, 0.25, 0.5, 0.5, 1.0]


# --------------------------------------------------------------------- #
# registry
# --------------------------------------------------------------------- #
class TestBackendRegistry:
    def test_builtin_backends_listed(self):
        names = storage_backends()
        assert "bisect" in names
        assert "columnar" in names
        assert names == sorted(names)

    def test_instances_are_cached(self):
        assert storage_backend("bisect") is storage_backend("bisect")
        assert isinstance(storage_backend("bisect"), BisectStorageBackend)

    def test_unknown_backend_names_the_known_ones(self):
        with pytest.raises(ConfigurationError, match="bisect"):
            storage_backend("no-such-backend")

    def test_columnar_registers_lazily_with_kernel(self):
        columnar = storage_backend("columnar")
        assert columnar.name == "columnar"
        assert columnar.virtual_cold_lists is True
        assert callable(columnar.batch_kernel())

    def test_bisect_has_no_kernel_and_eager_lists(self):
        bisect_backend = storage_backend("bisect")
        assert bisect_backend.batch_kernel() is None
        assert bisect_backend.virtual_cold_lists is False

    def test_registration_conflicts(self):
        class DummyBackend(BisectStorageBackend):
            name = "dummy-for-registry-test"

        name = DummyBackend.name
        try:
            register_storage_backend(name, DummyBackend)
            # same factory again: a no-op, not a conflict
            register_storage_backend(name, DummyBackend)
            assert name in storage_backends()
            assert isinstance(storage_backend(name), DummyBackend)
            with pytest.raises(ConfigurationError):
                register_storage_backend(name, BisectStorageBackend)
            register_storage_backend(name, BisectStorageBackend, replace_existing=True)
            assert type(storage_backend(name)) is BisectStorageBackend
        finally:
            backend_module._FACTORIES.pop(name, None)
            backend_module._INSTANCES.pop(name, None)

    def test_abstract_backend_defaults(self):
        class MinimalBackend(StorageBackend):
            name = "minimal"

            def make_inverted_list(self, term_id):
                return InvertedList(term_id)

            def make_threshold_tree(self, term_id):
                return ThresholdTree(term_id)

        minimal = MinimalBackend()
        assert minimal.batch_kernel() is None
        built = minimal.build_inverted_list(7, [(1, 0.5), (2, 0.25)])
        assert built.to_pairs() == [(1, 0.5), (2, 0.25)]
        # default attach_tree is a no-op
        minimal.attach_tree(built, ThresholdTree(7))


# --------------------------------------------------------------------- #
# postings columns vs bisect list
# --------------------------------------------------------------------- #
def probe_state(inverted_list, probes):
    """Everything observable about a list, for cross-class comparison."""
    state = {
        "len": len(inverted_list),
        "bool": bool(inverted_list),
        "pairs": inverted_list.to_pairs(),
        "top_iter": [(e.doc_id, e.weight) for e in inverted_list.iter_from_top()],
    }
    if len(inverted_list):
        state["top"] = inverted_list.top_weight()
        state["bottom"] = inverted_list.bottom_weight()
    for weight in probes:
        above = inverted_list.next_weight_above(weight)
        below = inverted_list.first_entry_at_or_below(weight)
        state[("above", weight)] = None if above is None else (above.doc_id, above.weight)
        state[("below", weight)] = None if below is None else (below.doc_id, below.weight)
        state[("at_or_above", weight)] = [
            (e.doc_id, e.weight) for e in inverted_list.entries_at_or_above(weight)
        ]
        state[("from_w_incl", weight)] = [
            (e.doc_id, e.weight) for e in inverted_list.iter_from_weight(weight)
        ]
        state[("from_w_excl", weight)] = [
            (e.doc_id, e.weight)
            for e in inverted_list.iter_from_weight(weight, inclusive=False)
        ]
    return state


@given(
    ops=st.lists(
        st.tuples(st.integers(min_value=0, max_value=11), st.sampled_from(TIE_WEIGHTS)),
        min_size=1,
        max_size=60,
    )
)
@settings(max_examples=100, deadline=None)
def test_columnar_list_matches_bisect_list(ops):
    """Insert-if-absent / delete-if-present mirror on both containers."""
    reference = InvertedList(3)
    columnar = ColumnarInvertedList(3)
    probes = [0.0, 0.1, 0.25, 0.3, 0.5, 1.0, 2.0]
    for doc_id, weight in ops:
        if doc_id in reference:
            assert reference.delete(doc_id) == columnar.delete(doc_id)
        else:
            reference.insert(doc_id, weight)
            columnar.insert(doc_id, weight)
        assert probe_state(columnar, probes) == probe_state(reference, probes)
        columnar.check_invariants()
    for doc_id in list({doc_id for doc_id, _ in ops}):
        if doc_id in reference:
            assert columnar.weight_of(doc_id) == reference.weight_of(doc_id)


def test_columnar_list_exceptions_match_bisect():
    for make in (InvertedList, ColumnarInvertedList):
        lst = make(1)
        lst.insert(5, 0.5)
        with pytest.raises(DuplicateDocumentError):
            lst.insert(5, 0.25)
        with pytest.raises(UnknownDocumentError):
            lst.delete(6)
        assert lst.weight_of(6) == 0.0  # absent docs read as weightless


def test_tombstones_compact_once_they_outnumber_live_entries():
    columnar = ColumnarInvertedList(1)
    for doc_id in range(40):
        columnar.insert(doc_id, 0.25 if doc_id % 2 else 0.5)
    for doc_id in range(0, 40, 2):
        columnar.delete(doc_id)
    # 20 tombstones among 40 cells: dead cells do not yet outnumber live
    assert TOMBSTONE in columnar._ids
    columnar.delete(1)  # 21st tombstone tips the balance: one sweep
    # content is intact and the dead cells are gone again
    columnar.check_invariants()
    assert len(columnar) == 19
    assert all(doc_id != TOMBSTONE for doc_id in columnar._ids)
    assert columnar.to_pairs() == [(doc_id, 0.25) for doc_id in range(3, 40, 2)]


def test_bulk_build_equals_incremental_inserts():
    pairs = [(doc_id, TIE_WEIGHTS[doc_id % len(TIE_WEIGHTS)]) for doc_id in range(25)]
    incremental = ColumnarInvertedList(9)
    for doc_id, weight in pairs:
        incremental.insert(doc_id, weight)
    bulk = ColumnarInvertedList.from_postings(9, pairs)
    bulk.check_invariants()
    assert bulk.to_pairs() == incremental.to_pairs()
    assert bytes(bulk._negw) == bytes(incremental._negw)
    assert bytes(bulk._ids) == bytes(incremental._ids)


# --------------------------------------------------------------------- #
# threshold columns vs bisect tree
# --------------------------------------------------------------------- #
@given(
    ops=st.lists(
        st.tuples(st.integers(min_value=1, max_value=8), st.sampled_from(TIE_WEIGHTS)),
        min_size=1,
        max_size=50,
    )
)
@settings(max_examples=100, deadline=None)
def test_columnar_tree_matches_bisect_tree(ops):
    """register / update / unregister mirror on both trees."""
    reference = ThresholdTree(3)
    columnar = ColumnarThresholdTree(3)
    for query_id, threshold in ops:
        if query_id in reference and threshold == reference.get(query_id):
            reference.unregister(query_id)
            columnar.unregister(query_id)
        else:
            reference.register(query_id, threshold)
            columnar.register(query_id, threshold)
        assert len(columnar) == len(reference)
        assert list(columnar) == list(reference)
        assert columnar.min_threshold() == reference.min_threshold()
        for weight in (0.0, 0.1, 0.25, 0.5, 1.0, 2.0):
            assert columnar.queries_at_or_below(weight) == (
                reference.queries_at_or_below(weight)
            )
            assert list(columnar.iter_queries_at_or_below(weight)) == (
                reference.queries_at_or_below(weight)
            )
    for query_id in range(1, 9):
        assert columnar.get(query_id) == reference.get(query_id)
        assert (query_id in columnar) == (query_id in reference)


def test_columnar_tree_exceptions_match_bisect():
    for make in (ThresholdTree, ColumnarThresholdTree):
        tree = make(1)
        with pytest.raises(UnknownQueryError):
            tree.threshold_of(4)
        with pytest.raises(UnknownQueryError):
            tree.unregister(4)


# --------------------------------------------------------------------- #
# virtual cold lists
# --------------------------------------------------------------------- #
def streamed(doc_id, weights, timestamp=0.0):
    return StreamedDocument(Document(doc_id, CompositionList(weights)), timestamp)


class TestVirtualColdLists:
    def test_cold_terms_have_no_materialised_lists(self):
        index = InvertedIndex("columnar")
        index.insert_document(streamed(1, {10: 0.5, 11: 0.25}))
        assert not index._lists  # nobody watches: nothing materialised

    def test_existing_list_rebuilds_cold_postings_on_demand(self):
        eager = InvertedIndex("bisect")
        virtual = InvertedIndex("columnar")
        for doc_id, weights in enumerate(
            [{10: 0.5, 11: 0.25}, {10: 0.25}, {11: 0.5, 12: 1.0}], start=1
        ):
            eager.insert_document(streamed(doc_id, weights))
            virtual.insert_document(streamed(doc_id, weights))
        for term_id in (10, 11, 12):
            assert virtual.existing_list(term_id).to_pairs() == (
                eager.existing_list(term_id).to_pairs()
            )
        assert virtual.existing_list(99) is None
        assert eager.existing_list(99) is None

    def test_watched_terms_stay_materialised_through_churn(self):
        index = InvertedIndex("columnar")
        index.threshold_tree(10)  # watching term 10 materialises its list
        index.insert_document(streamed(1, {10: 0.5, 11: 0.25}))
        index.insert_document(streamed(2, {10: 0.25}))
        assert 10 in index._lists
        assert 11 not in index._lists
        assert index._lists[10].to_pairs() == [(1, 0.5), (2, 0.25)]
        index.remove_document(1)
        assert index._lists[10].to_pairs() == [(2, 0.25)]
        index.check_invariants()

    def test_both_backends_expose_identical_index_state(self):
        docs = [
            {10: 0.5, 11: 0.25},
            {11: 0.5},
            {10: 0.25, 12: 1.0},
        ]
        snapshots = []
        for storage in ("bisect", "columnar"):
            index = InvertedIndex(storage)
            tree = index.threshold_tree(10)
            tree.register(1, 0.0)
            for doc_id, weights in enumerate(docs, start=1):
                index.insert_document(streamed(doc_id, weights))
            index.remove_document(2)
            index.check_invariants()
            snapshots.append(
                {
                    term_id: index.existing_list(term_id).to_pairs()
                    for term_id in (10, 11, 12)
                }
            )
        assert snapshots[0] == snapshots[1]
