"""Tests for impact-ordered inverted lists."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import DuplicateDocumentError, UnknownDocumentError
from repro.index.inverted_list import InvertedList, PostingEntry


@pytest.fixture
def populated():
    """The L11 list of the paper's Figure 1 (weights 0.10, 0.08, 0.07, 0.05)."""
    lst = InvertedList(term_id=11)
    lst.insert(7, 0.10)
    lst.insert(1, 0.08)
    lst.insert(5, 0.07)
    lst.insert(8, 0.05)
    return lst


class TestUpdates:
    def test_insert_orders_by_decreasing_weight(self, populated):
        assert populated.to_pairs() == [(7, 0.10), (1, 0.08), (5, 0.07), (8, 0.05)]

    def test_duplicate_insert_rejected(self, populated):
        with pytest.raises(DuplicateDocumentError):
            populated.insert(7, 0.2)

    def test_non_positive_weight_rejected(self):
        lst = InvertedList(0)
        with pytest.raises(ValueError):
            lst.insert(1, 0.0)
        with pytest.raises(ValueError):
            lst.insert(1, -0.3)

    def test_delete_returns_weight(self, populated):
        assert populated.delete(5) == pytest.approx(0.07)
        assert 5 not in populated
        assert len(populated) == 3

    def test_delete_unknown_rejected(self, populated):
        with pytest.raises(UnknownDocumentError):
            populated.delete(99)

    def test_ties_ordered_by_doc_id(self):
        lst = InvertedList(0)
        lst.insert(9, 0.5)
        lst.insert(3, 0.5)
        assert [e.doc_id for e in lst] == [3, 9]


class TestLookups:
    def test_weight_of(self, populated):
        assert populated.weight_of(1) == pytest.approx(0.08)
        assert populated.weight_of(42) == 0.0

    def test_top_and_bottom_weight(self, populated):
        assert populated.top_weight() == pytest.approx(0.10)
        assert populated.bottom_weight() == pytest.approx(0.05)

    def test_empty_list_weights(self):
        lst = InvertedList(0)
        assert lst.top_weight() == 0.0
        assert lst.bottom_weight() == 0.0
        assert len(lst) == 0
        assert not lst


class TestNavigation:
    def test_iter_from_top(self, populated):
        assert [e.doc_id for e in populated.iter_from_top()] == [7, 1, 5, 8]

    def test_iter_from_weight_inclusive(self, populated):
        assert [e.doc_id for e in populated.iter_from_weight(0.07)] == [5, 8]

    def test_iter_from_weight_exclusive(self, populated):
        assert [e.doc_id for e in populated.iter_from_weight(0.07, inclusive=False)] == [8]

    def test_iter_from_weight_above_everything(self, populated):
        assert [e.doc_id for e in populated.iter_from_weight(1.0)] == [7, 1, 5, 8]

    def test_next_weight_above_finds_preceding_entry(self, populated):
        # This is the roll-up candidate: the entry just above the threshold.
        entry = populated.next_weight_above(0.07)
        assert entry.weight == pytest.approx(0.08)

    def test_next_weight_above_with_threshold_at_top(self, populated):
        assert populated.next_weight_above(0.10) is None
        assert populated.next_weight_above(0.5) is None

    def test_next_weight_above_zero_threshold(self, populated):
        entry = populated.next_weight_above(0.0)
        assert entry.weight == pytest.approx(0.05)

    def test_first_entry_at_or_below(self, populated):
        assert populated.first_entry_at_or_below(0.09).doc_id == 1
        assert populated.first_entry_at_or_below(0.01) is None

    def test_entries_at_or_above(self, populated):
        entries = populated.entries_at_or_above(0.07)
        assert [e.doc_id for e in entries] == [7, 1, 5]

    def test_posting_entry_key(self):
        entry = PostingEntry(doc_id=4, weight=0.3)
        assert entry.key() == (-0.3, 4)


class TestPropertyBased:
    @given(
        st.dictionaries(
            st.integers(min_value=0, max_value=200),
            st.floats(min_value=0.001, max_value=1.0, allow_nan=False),
            min_size=1,
            max_size=60,
        )
    )
    @settings(max_examples=100, deadline=None)
    def test_impact_order_and_membership(self, postings):
        lst = InvertedList(0)
        for doc_id, weight in postings.items():
            lst.insert(doc_id, weight)
        weights = [entry.weight for entry in lst]
        assert weights == sorted(weights, reverse=True)
        assert len(lst) == len(postings)
        for doc_id, weight in postings.items():
            assert lst.weight_of(doc_id) == pytest.approx(weight)
        lst.check_invariants()

    @given(
        st.dictionaries(
            st.integers(min_value=0, max_value=100),
            st.floats(min_value=0.001, max_value=1.0, allow_nan=False),
            min_size=2,
            max_size=40,
        ),
        st.floats(min_value=0.0, max_value=1.0),
    )
    @settings(max_examples=100, deadline=None)
    def test_next_weight_above_matches_linear_scan(self, postings, threshold):
        lst = InvertedList(0)
        for doc_id, weight in postings.items():
            lst.insert(doc_id, weight)
        above = [w for w in postings.values() if w > threshold]
        entry = lst.next_weight_above(threshold)
        if above:
            assert entry is not None
            assert entry.weight == pytest.approx(min(above))
        else:
            assert entry is None

    @given(
        st.dictionaries(
            st.integers(min_value=0, max_value=100),
            st.floats(min_value=0.001, max_value=1.0, allow_nan=False),
            min_size=1,
            max_size=40,
        ),
        st.floats(min_value=0.0, max_value=1.0),
    )
    @settings(max_examples=100, deadline=None)
    def test_iter_from_weight_matches_linear_scan(self, postings, threshold):
        lst = InvertedList(0)
        for doc_id, weight in postings.items():
            lst.insert(doc_id, weight)
        expected = sorted(
            (w for w in postings.values() if w <= threshold), reverse=True
        )
        got = [entry.weight for entry in lst.iter_from_weight(threshold)]
        assert got == pytest.approx(expected)
