"""Tests for the threshold trees."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import UnknownQueryError
from repro.index.threshold_tree import ThresholdTree


@pytest.fixture
def tree():
    tree = ThresholdTree(term_id=11)
    tree.register(0, 0.08)
    tree.register(1, 0.25)
    tree.register(2, 0.02)
    return tree


class TestRegistration:
    def test_register_and_lookup(self, tree):
        assert tree.threshold_of(1) == 0.25
        assert tree.get(2) == 0.02
        assert len(tree) == 3
        assert 1 in tree and 9 not in tree

    def test_register_is_upsert(self, tree):
        tree.register(0, 0.5)
        assert tree.threshold_of(0) == 0.5
        assert len(tree) == 3

    def test_register_same_value_is_noop(self, tree):
        tree.register(0, 0.08)
        assert tree.threshold_of(0) == 0.08

    def test_update_requires_registration(self, tree):
        tree.update(0, 0.9)
        assert tree.threshold_of(0) == 0.9
        with pytest.raises(UnknownQueryError):
            tree.update(42, 0.5)

    def test_unregister(self, tree):
        tree.unregister(1)
        assert 1 not in tree
        assert len(tree) == 2
        with pytest.raises(UnknownQueryError):
            tree.unregister(1)

    def test_threshold_of_unknown_raises(self, tree):
        with pytest.raises(UnknownQueryError):
            tree.threshold_of(77)
        assert tree.get(77) is None


class TestProbes:
    def test_queries_at_or_below(self, tree):
        assert sorted(tree.queries_at_or_below(0.10)) == [0, 2]
        assert sorted(tree.queries_at_or_below(0.30)) == [0, 1, 2]
        assert tree.queries_at_or_below(0.01) == []

    def test_probe_includes_exact_ties(self, tree):
        # The paper's condition is theta_{Q,t} <= w_{d,t}: equality matches.
        assert 0 in tree.queries_at_or_below(0.08)

    def test_iter_variant_matches_list_variant(self, tree):
        assert sorted(tree.iter_queries_at_or_below(0.1)) == sorted(tree.queries_at_or_below(0.1))

    def test_min_threshold(self, tree):
        assert tree.min_threshold() == 0.02
        assert ThresholdTree(0).min_threshold() is None

    def test_iteration_in_threshold_order(self, tree):
        thresholds = [threshold for threshold, _ in tree]
        assert thresholds == sorted(thresholds)

    def test_probe_after_updates(self, tree):
        tree.register(2, 0.5)   # roll-up: 2 moves out of reach
        assert sorted(tree.queries_at_or_below(0.10)) == [0]
        tree.register(1, 0.01)  # refill: 1 becomes reachable
        assert sorted(tree.queries_at_or_below(0.10)) == [0, 1]


class TestPropertyBased:
    @given(
        st.dictionaries(
            st.integers(min_value=0, max_value=50),
            st.floats(min_value=0.0, max_value=1.0, allow_nan=False),
            min_size=1,
            max_size=30,
        ),
        st.floats(min_value=0.0, max_value=1.0),
    )
    @settings(max_examples=120, deadline=None)
    def test_probe_matches_linear_scan(self, registrations, probe_weight):
        tree = ThresholdTree(0)
        for query_id, threshold in registrations.items():
            tree.register(query_id, threshold)
        expected = sorted(q for q, t in registrations.items() if t <= probe_weight)
        assert sorted(tree.queries_at_or_below(probe_weight)) == expected
        tree.check_invariants()

    @given(
        st.lists(
            st.tuples(st.integers(0, 10), st.floats(0.0, 1.0, allow_nan=False)),
            min_size=1,
            max_size=60,
        )
    )
    @settings(max_examples=120, deadline=None)
    def test_repeated_upserts_keep_latest_value(self, updates):
        tree = ThresholdTree(0)
        latest = {}
        for query_id, threshold in updates:
            tree.register(query_id, threshold)
            latest[query_id] = threshold
        for query_id, threshold in latest.items():
            assert tree.threshold_of(query_id) == threshold
        assert len(tree) == len(latest)
        tree.check_invariants()
