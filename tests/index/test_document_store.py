"""Tests for the FIFO document store."""

import pytest

from repro.exceptions import DuplicateDocumentError, UnknownDocumentError
from repro.index.document_store import DocumentStore
from tests.conftest import make_document


@pytest.fixture
def store():
    store = DocumentStore()
    for i in range(3):
        store.add(make_document(i, {0: 0.5}, arrival_time=float(i)))
    return store


class TestDocumentStore:
    def test_fifo_iteration_order(self, store):
        assert [d.doc_id for d in store] == [0, 1, 2]

    def test_len_and_contains(self, store):
        assert len(store) == 3
        assert 1 in store and 7 not in store

    def test_duplicate_add_rejected(self, store):
        with pytest.raises(DuplicateDocumentError):
            store.add(make_document(1, {0: 0.5}))

    def test_get_and_find(self, store):
        assert store.get(2).doc_id == 2
        assert store.find(2).doc_id == 2
        assert store.find(42) is None
        with pytest.raises(UnknownDocumentError):
            store.get(42)

    def test_remove(self, store):
        removed = store.remove(1)
        assert removed.doc_id == 1
        assert [d.doc_id for d in store] == [0, 2]
        with pytest.raises(UnknownDocumentError):
            store.remove(1)

    def test_pop_oldest(self, store):
        assert store.pop_oldest().doc_id == 0
        assert store.pop_oldest().doc_id == 1

    def test_pop_oldest_empty(self):
        with pytest.raises(UnknownDocumentError):
            DocumentStore().pop_oldest()

    def test_oldest_newest(self, store):
        assert store.oldest.doc_id == 0
        assert store.newest.doc_id == 2
        empty = DocumentStore()
        assert empty.oldest is None and empty.newest is None

    def test_doc_ids(self, store):
        assert store.doc_ids() == [0, 1, 2]

    def test_removal_preserves_relative_order(self, store):
        store.remove(0)
        store.add(make_document(9, {0: 0.5}, arrival_time=9.0))
        assert store.doc_ids() == [1, 2, 9]
