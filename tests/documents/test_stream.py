"""Tests for arrival processes and document streams."""

import pytest

from repro.documents.corpus import InMemoryCorpus, SyntheticCorpus, SyntheticCorpusConfig
from repro.documents.stream import (
    DocumentStream,
    FixedRateArrivalProcess,
    PoissonArrivalProcess,
    ReplayArrivalProcess,
    stream_from_documents,
)
from repro.exceptions import ConfigurationError, StreamError


class TestPoissonArrivalProcess:
    def test_rate_must_be_positive(self):
        with pytest.raises(ConfigurationError):
            PoissonArrivalProcess(rate=0)

    def test_timestamps_strictly_increase(self):
        process = PoissonArrivalProcess(rate=200, seed=1)
        times = [process.next_arrival_time() for _ in range(100)]
        assert all(b > a for a, b in zip(times, times[1:]))

    def test_mean_interarrival_close_to_inverse_rate(self):
        process = PoissonArrivalProcess(rate=200, seed=2)
        times = [process.next_arrival_time() for _ in range(5000)]
        mean_gap = times[-1] / len(times)
        assert 0.8 / 200 < mean_gap < 1.2 / 200

    def test_reproducible_with_seed(self):
        a = PoissonArrivalProcess(rate=10, seed=7)
        b = PoissonArrivalProcess(rate=10, seed=7)
        assert [a.next_arrival_time() for _ in range(10)] == [
            b.next_arrival_time() for _ in range(10)
        ]

    def test_reset_rewinds_clock(self):
        process = PoissonArrivalProcess(rate=10, seed=1, start_time=5.0)
        process.next_arrival_time()
        process.reset()
        assert process.current_time == 5.0


class TestFixedRateArrivalProcess:
    def test_constant_gaps(self):
        process = FixedRateArrivalProcess(rate=4.0)
        times = [process.next_arrival_time() for _ in range(4)]
        assert times == pytest.approx([0.25, 0.5, 0.75, 1.0])

    def test_rate_must_be_positive(self):
        with pytest.raises(ConfigurationError):
            FixedRateArrivalProcess(rate=-1)


class TestReplayArrivalProcess:
    def test_replays_exact_timestamps(self):
        process = ReplayArrivalProcess([1.0, 2.5, 7.0])
        assert [process.next_arrival_time() for _ in range(3)] == [1.0, 2.5, 7.0]

    def test_exhaustion_raises(self):
        process = ReplayArrivalProcess([1.0])
        process.next_arrival_time()
        with pytest.raises(StreamError):
            process.next_arrival_time()

    def test_non_monotone_timestamps_rejected(self):
        with pytest.raises(ConfigurationError):
            ReplayArrivalProcess([2.0, 1.0])

    def test_reset_replays_from_start(self):
        process = ReplayArrivalProcess([1.0, 2.0])
        process.next_arrival_time()
        process.reset()
        assert process.next_arrival_time() == 1.0


class TestDocumentStream:
    def test_pairs_documents_with_increasing_times(self):
        corpus = InMemoryCorpus(["one story", "two stories", "three stories"])
        stream = DocumentStream(corpus, FixedRateArrivalProcess(rate=1.0))
        docs = list(stream)
        assert [d.doc_id for d in docs] == [0, 1, 2]
        assert [d.arrival_time for d in docs] == pytest.approx([1.0, 2.0, 3.0])

    def test_limit_bounds_unbounded_corpora(self):
        corpus = SyntheticCorpus(SyntheticCorpusConfig(dictionary_size=50, seed=1))
        stream = DocumentStream(corpus, FixedRateArrivalProcess(rate=1.0), limit=7)
        assert len(list(stream)) == 7
        assert stream.emitted == 7

    def test_take(self):
        corpus = InMemoryCorpus(["a b", "c d", "e f"])
        stream = DocumentStream(corpus, FixedRateArrivalProcess(rate=1.0))
        assert len(stream.take(2)) == 2
        assert len(stream.take(5)) == 1  # only one document left

    def test_negative_limit_rejected(self):
        corpus = InMemoryCorpus(["a"])
        with pytest.raises(ConfigurationError):
            DocumentStream(corpus, limit=-1)

    def test_take_negative_rejected(self):
        corpus = InMemoryCorpus(["a"])
        with pytest.raises(ConfigurationError):
            DocumentStream(corpus).take(-2)

    def test_default_arrival_process_is_poisson(self):
        corpus = InMemoryCorpus(["a b", "c d"])
        docs = list(DocumentStream(corpus))
        assert docs[1].arrival_time > docs[0].arrival_time > 0


class TestStreamFromDocuments:
    def test_wraps_existing_documents(self):
        corpus = InMemoryCorpus(["alpha beta", "gamma delta"])
        documents = list(corpus)
        streamed = list(stream_from_documents(documents, FixedRateArrivalProcess(rate=2.0)))
        assert [s.doc_id for s in streamed] == [0, 1]
        assert streamed[0].arrival_time == pytest.approx(0.5)
