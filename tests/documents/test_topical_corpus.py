"""Tests for the topical (clustered) synthetic corpus."""

import pytest

from repro.documents.corpus import TopicalCorpusConfig, TopicalSyntheticCorpus
from repro.exceptions import ConfigurationError
from repro.text.vocabulary import Vocabulary


class TestTopicalCorpusConfig:
    def test_validation(self):
        with pytest.raises(ConfigurationError):
            TopicalCorpusConfig(dictionary_size=0).validate()
        with pytest.raises(ConfigurationError):
            TopicalCorpusConfig(num_topics=0).validate()
        with pytest.raises(ConfigurationError):
            TopicalCorpusConfig(topic_vocabulary_size=0).validate()
        with pytest.raises(ConfigurationError):
            TopicalCorpusConfig(dictionary_size=100, topic_vocabulary_size=200).validate()
        with pytest.raises(ConfigurationError):
            TopicalCorpusConfig(background_fraction=1.5).validate()


class TestTopicalSyntheticCorpus:
    @pytest.fixture
    def corpus(self):
        config = TopicalCorpusConfig(
            dictionary_size=2_000,
            num_topics=8,
            topic_vocabulary_size=300,
            mean_log_length=3.5,
            seed=3,
        )
        return TopicalSyntheticCorpus(config)

    def test_reproducible_with_seed(self):
        config = TopicalCorpusConfig(dictionary_size=1_000, num_topics=5, topic_vocabulary_size=200, seed=5)
        a = TopicalSyntheticCorpus(config).take(5)
        b = TopicalSyntheticCorpus(config).take(5)
        assert [dict(x.composition.items()) for x in a] == [dict(y.composition.items()) for y in b]

    def test_documents_tagged_with_topic(self, corpus):
        for doc in corpus.take(20):
            assert "topic" in doc.metadata
            assert 0 <= int(doc.metadata["topic"]) < 8

    def test_terms_within_dictionary(self, corpus):
        for doc in corpus.take(30):
            assert all(0 <= t < 2_000 for t in doc.terms())

    def test_documents_concentrate_in_their_topic_vocabulary(self, corpus):
        # With background_fraction=0.2, most tokens of a document should
        # come from its topic slice.
        config = corpus.config
        in_topic = 0
        total = 0
        for doc in corpus.take(50):
            topic = int(doc.metadata["topic"])
            topic_terms = set(corpus.topic_terms(topic))
            for term in doc.terms():
                total += 1
                if term in topic_terms:
                    in_topic += 1
        assert in_topic / total > 0.5  # majority from the topic vocabulary

    def test_topic_terms_range(self, corpus):
        terms = corpus.topic_terms(0)
        assert len(terms) == 300
        with pytest.raises(ConfigurationError):
            corpus.topic_terms(99)

    def test_sample_topic_query_terms(self, corpus):
        terms = corpus.sample_topic_query_terms(2, 5)
        assert len(terms) == len(set(terms)) == 5
        assert set(terms) <= set(corpus.topic_terms(2))

    def test_sample_topic_query_terms_validation(self, corpus):
        with pytest.raises(ConfigurationError):
            corpus.sample_topic_query_terms(0, 0)
        with pytest.raises(ConfigurationError):
            corpus.sample_topic_query_terms(0, 10_000)

    def test_frozen_vocabulary(self, corpus):
        assert corpus.vocabulary.frozen
        assert len(corpus.vocabulary) == 2_000

    def test_small_vocabulary_rejected(self):
        vocab = Vocabulary(["a", "b"])
        with pytest.raises(ConfigurationError):
            TopicalSyntheticCorpus(TopicalCorpusConfig(dictionary_size=100), vocabulary=vocab)

    def test_take_validates_count(self, corpus):
        with pytest.raises(ConfigurationError):
            corpus.take(-1)


class TestTopicalCorpusWithEngine:
    def test_topical_query_matches_its_topic(self):
        """A query built from a topic's vocabulary should match documents of
        that topic more strongly than random ones -- the realistic signal the
        topical corpus adds."""
        from repro.core.engine import ITAEngine
        from repro.documents.stream import DocumentStream, FixedRateArrivalProcess
        from repro.documents.window import CountBasedWindow
        from repro.query.query import ContinuousQuery

        config = TopicalCorpusConfig(
            dictionary_size=2_000, num_topics=6, topic_vocabulary_size=200,
            background_fraction=0.1, mean_log_length=3.5, seed=9,
        )
        corpus = TopicalSyntheticCorpus(config)
        query = ContinuousQuery.from_term_ids(0, corpus.sample_topic_query_terms(0, 6), k=5)
        engine = ITAEngine(CountBasedWindow(60))
        engine.register_query(query)
        matched_at_least_once = False
        stream = DocumentStream(corpus, FixedRateArrivalProcess(rate=10.0), limit=200)
        for document in stream:
            engine.process(document)
            if engine.current_result(0):
                matched_at_least_once = True
        engine.check_invariants()
        # Topical documents repeatedly hit the query's topic vocabulary, so
        # the query must have had a non-empty result at some point.
        assert matched_at_least_once
