"""Tests for count-based and time-based sliding windows."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.documents.window import CountBasedWindow, TimeBasedWindow
from repro.exceptions import ConfigurationError, WindowError
from tests.conftest import make_document


class TestCountBasedWindow:
    def test_size_must_be_positive(self):
        with pytest.raises(ConfigurationError):
            CountBasedWindow(0)

    def test_no_expiration_until_full(self):
        window = CountBasedWindow(3)
        for i in range(3):
            assert window.insert(make_document(i, {0: 0.5}, arrival_time=i)) == []
        assert len(window) == 3

    def test_oldest_expires_when_full(self):
        window = CountBasedWindow(2)
        window.insert(make_document(0, {0: 0.5}, arrival_time=0))
        window.insert(make_document(1, {0: 0.5}, arrival_time=1))
        expired = window.insert(make_document(2, {0: 0.5}, arrival_time=2))
        assert [d.doc_id for d in expired] == [0]
        assert [d.doc_id for d in window] == [1, 2]

    def test_exactly_one_expiration_per_arrival_in_steady_state(self):
        window = CountBasedWindow(5)
        for i in range(20):
            expired = window.insert(make_document(i, {0: 0.1}, arrival_time=i))
            if i < 5:
                assert expired == []
            else:
                assert len(expired) == 1
                assert expired[0].doc_id == i - 5

    def test_time_does_not_expire_documents(self):
        window = CountBasedWindow(2)
        window.insert(make_document(0, {0: 0.5}, arrival_time=0))
        assert window.advance_time(1_000_000.0) == []

    def test_out_of_order_arrival_rejected(self):
        window = CountBasedWindow(2)
        window.insert(make_document(0, {0: 0.5}, arrival_time=10))
        with pytest.raises(WindowError):
            window.insert(make_document(1, {0: 0.5}, arrival_time=5))

    def test_contains_and_accessors(self):
        window = CountBasedWindow(3)
        window.insert(make_document(7, {0: 0.5}, arrival_time=0))
        window.insert(make_document(8, {0: 0.5}, arrival_time=1))
        assert 7 in window and 9 not in window
        assert window.oldest.doc_id == 7
        assert window.newest.doc_id == 8
        assert [d.doc_id for d in window.valid_documents()] == [7, 8]

    def test_empty_window_accessors(self):
        window = CountBasedWindow(3)
        assert window.oldest is None
        assert window.newest is None
        assert len(window) == 0

    @given(st.integers(min_value=1, max_value=10), st.integers(min_value=0, max_value=60))
    @settings(max_examples=60, deadline=None)
    def test_window_never_exceeds_size(self, size, arrivals):
        window = CountBasedWindow(size)
        for i in range(arrivals):
            window.insert(make_document(i, {0: 0.5}, arrival_time=float(i)))
            assert len(window) <= size
        assert len(window) == min(size, arrivals)


class TestTimeBasedWindow:
    def test_span_must_be_positive(self):
        with pytest.raises(ConfigurationError):
            TimeBasedWindow(0)

    def test_documents_expire_after_span(self):
        window = TimeBasedWindow(span=10.0)
        window.insert(make_document(0, {0: 0.5}, arrival_time=0.0))
        window.insert(make_document(1, {0: 0.5}, arrival_time=5.0))
        expired = window.insert(make_document(2, {0: 0.5}, arrival_time=10.0))
        assert [d.doc_id for d in expired] == [0]
        assert len(window) == 2

    def test_arrival_alone_never_expires_recent_documents(self):
        window = TimeBasedWindow(span=100.0)
        for i in range(10):
            assert window.insert(make_document(i, {0: 0.5}, arrival_time=float(i))) == []
        assert len(window) == 10

    def test_advance_time_expires_documents(self):
        window = TimeBasedWindow(span=10.0)
        window.insert(make_document(0, {0: 0.5}, arrival_time=0.0))
        window.insert(make_document(1, {0: 0.5}, arrival_time=8.0))
        expired = window.advance_time(12.0)
        assert [d.doc_id for d in expired] == [0]
        assert [d.doc_id for d in window] == [1]

    def test_advance_time_backwards_rejected(self):
        window = TimeBasedWindow(span=10.0)
        window.insert(make_document(0, {0: 0.5}, arrival_time=5.0))
        with pytest.raises(WindowError):
            window.advance_time(1.0)

    def test_multiple_expirations_in_one_step(self):
        window = TimeBasedWindow(span=2.0)
        for i in range(5):
            window.insert(make_document(i, {0: 0.5}, arrival_time=float(i) * 0.1))
        expired = window.advance_time(50.0)
        assert len(expired) == 5
        assert len(window) == 0

    @given(
        st.lists(st.floats(min_value=0.01, max_value=5.0), min_size=1, max_size=50),
        st.floats(min_value=0.5, max_value=20.0),
    )
    @settings(max_examples=60, deadline=None)
    def test_validity_matches_definition(self, gaps, span):
        window = TimeBasedWindow(span=span)
        now = 0.0
        for i, gap in enumerate(gaps):
            now += gap
            window.insert(make_document(i, {0: 0.5}, arrival_time=now))
            for document in window:
                assert now - document.arrival_time < span
