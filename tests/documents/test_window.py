"""Tests for count-based and time-based sliding windows."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.documents.window import CountBasedWindow, TimeBasedWindow
from repro.exceptions import ConfigurationError, WindowError
from tests.conftest import make_document


class TestCountBasedWindow:
    def test_size_must_be_positive(self):
        with pytest.raises(ConfigurationError):
            CountBasedWindow(0)

    def test_no_expiration_until_full(self):
        window = CountBasedWindow(3)
        for i in range(3):
            assert window.insert(make_document(i, {0: 0.5}, arrival_time=i)) == []
        assert len(window) == 3

    def test_oldest_expires_when_full(self):
        window = CountBasedWindow(2)
        window.insert(make_document(0, {0: 0.5}, arrival_time=0))
        window.insert(make_document(1, {0: 0.5}, arrival_time=1))
        expired = window.insert(make_document(2, {0: 0.5}, arrival_time=2))
        assert [d.doc_id for d in expired] == [0]
        assert [d.doc_id for d in window] == [1, 2]

    def test_exactly_one_expiration_per_arrival_in_steady_state(self):
        window = CountBasedWindow(5)
        for i in range(20):
            expired = window.insert(make_document(i, {0: 0.1}, arrival_time=i))
            if i < 5:
                assert expired == []
            else:
                assert len(expired) == 1
                assert expired[0].doc_id == i - 5

    def test_time_does_not_expire_documents(self):
        window = CountBasedWindow(2)
        window.insert(make_document(0, {0: 0.5}, arrival_time=0))
        assert window.advance_time(1_000_000.0) == []

    def test_out_of_order_arrival_rejected(self):
        window = CountBasedWindow(2)
        window.insert(make_document(0, {0: 0.5}, arrival_time=10))
        with pytest.raises(WindowError):
            window.insert(make_document(1, {0: 0.5}, arrival_time=5))

    def test_contains_and_accessors(self):
        window = CountBasedWindow(3)
        window.insert(make_document(7, {0: 0.5}, arrival_time=0))
        window.insert(make_document(8, {0: 0.5}, arrival_time=1))
        assert 7 in window and 9 not in window
        assert window.oldest.doc_id == 7
        assert window.newest.doc_id == 8
        assert [d.doc_id for d in window.valid_documents()] == [7, 8]

    def test_empty_window_accessors(self):
        window = CountBasedWindow(3)
        assert window.oldest is None
        assert window.newest is None
        assert len(window) == 0

    @given(st.integers(min_value=1, max_value=10), st.integers(min_value=0, max_value=60))
    @settings(max_examples=60, deadline=None)
    def test_window_never_exceeds_size(self, size, arrivals):
        window = CountBasedWindow(size)
        for i in range(arrivals):
            window.insert(make_document(i, {0: 0.5}, arrival_time=float(i)))
            assert len(window) <= size
        assert len(window) == min(size, arrivals)


class TestTimeBasedWindow:
    def test_span_must_be_positive(self):
        with pytest.raises(ConfigurationError):
            TimeBasedWindow(0)

    def test_documents_expire_after_span(self):
        window = TimeBasedWindow(span=10.0)
        window.insert(make_document(0, {0: 0.5}, arrival_time=0.0))
        window.insert(make_document(1, {0: 0.5}, arrival_time=5.0))
        expired = window.insert(make_document(2, {0: 0.5}, arrival_time=10.0))
        assert [d.doc_id for d in expired] == [0]
        assert len(window) == 2

    def test_arrival_alone_never_expires_recent_documents(self):
        window = TimeBasedWindow(span=100.0)
        for i in range(10):
            assert window.insert(make_document(i, {0: 0.5}, arrival_time=float(i))) == []
        assert len(window) == 10

    def test_advance_time_expires_documents(self):
        window = TimeBasedWindow(span=10.0)
        window.insert(make_document(0, {0: 0.5}, arrival_time=0.0))
        window.insert(make_document(1, {0: 0.5}, arrival_time=8.0))
        expired = window.advance_time(12.0)
        assert [d.doc_id for d in expired] == [0]
        assert [d.doc_id for d in window] == [1]

    def test_advance_time_backwards_rejected(self):
        window = TimeBasedWindow(span=10.0)
        window.insert(make_document(0, {0: 0.5}, arrival_time=5.0))
        with pytest.raises(WindowError):
            window.advance_time(1.0)

    def test_multiple_expirations_in_one_step(self):
        window = TimeBasedWindow(span=2.0)
        for i in range(5):
            window.insert(make_document(i, {0: 0.5}, arrival_time=float(i) * 0.1))
        expired = window.advance_time(50.0)
        assert len(expired) == 5
        assert len(window) == 0

    @given(
        st.lists(st.floats(min_value=0.01, max_value=5.0), min_size=1, max_size=50),
        st.floats(min_value=0.5, max_value=20.0),
    )
    @settings(max_examples=60, deadline=None)
    def test_validity_matches_definition(self, gaps, span):
        window = TimeBasedWindow(span=span)
        now = 0.0
        for i, gap in enumerate(gaps):
            now += gap
            window.insert(make_document(i, {0: 0.5}, arrival_time=now))
            for document in window:
                assert now - document.arrival_time < span


class TestWindowClockRegression:
    """advance_time must move the window clock, not just expire documents.

    The historical bug: ``advance_time(T)`` never updated the tracked
    clock, so an ``insert`` with ``arrival_time < T`` was accepted -- an
    already-expired document entered a time-based window and stayed valid
    until the next clock tick.
    """

    def test_insert_behind_advanced_clock_rejected(self):
        window = TimeBasedWindow(span=10.0)
        window.insert(make_document(0, {0: 0.5}, arrival_time=0.0))
        window.advance_time(50.0)
        with pytest.raises(WindowError):
            window.insert(make_document(1, {0: 0.5}, arrival_time=20.0))

    def test_insert_at_advanced_clock_accepted(self):
        window = TimeBasedWindow(span=10.0)
        window.advance_time(50.0)
        window.insert(make_document(0, {0: 0.5}, arrival_time=50.0))
        assert 0 in window

    def test_count_based_window_also_tracks_advances(self):
        window = CountBasedWindow(4)
        window.insert(make_document(0, {0: 0.5}, arrival_time=1.0))
        window.advance_time(9.0)
        with pytest.raises(WindowError):
            window.insert(make_document(1, {0: 0.5}, arrival_time=5.0))

    def test_clock_property_tracks_both_event_kinds(self):
        window = TimeBasedWindow(span=10.0)
        assert window.clock is None
        window.insert(make_document(0, {0: 0.5}, arrival_time=3.0))
        assert window.clock == 3.0
        window.advance_time(7.5)
        assert window.clock == 7.5

    def test_engine_snapshot_preserves_advanced_clock(self):
        from repro.core.engine import ITAEngine
        from repro.persistence import restore_engine, snapshot_engine

        engine = ITAEngine(TimeBasedWindow(span=10.0))
        engine.process(make_document(0, {0: 0.5}, arrival_time=0.0))
        engine.process(make_document(1, {0: 0.5}, arrival_time=6.0))
        engine.advance_time(12.0)  # expires doc 0, clock now 12
        snapshot = snapshot_engine(engine)
        assert snapshot["clock"] == 12.0

        restored = restore_engine(snapshot)
        assert restored.window.clock == 12.0
        # Replay after restore must reject exactly what the original would.
        with pytest.raises(WindowError):
            restored.process(make_document(2, {0: 0.5}, arrival_time=8.0))

    def test_legacy_snapshot_without_clock_still_restores(self):
        from repro.core.engine import ITAEngine
        from repro.persistence import restore_engine, snapshot_engine

        engine = ITAEngine(CountBasedWindow(4))
        engine.process(make_document(0, {0: 0.5}, arrival_time=2.0))
        snapshot = snapshot_engine(engine)
        del snapshot["clock"]
        restored = restore_engine(snapshot)
        assert restored.window.clock == 2.0  # from the replayed arrival


class TestWindowMembership:
    """__contains__ is backed by a doc-id map kept consistent by
    insert/_pop_oldest (it used to be an O(n) scan of the deque)."""

    def test_membership_follows_count_expiry(self):
        window = CountBasedWindow(2)
        for i in range(5):
            window.insert(make_document(i, {0: 0.5}, arrival_time=float(i)))
        assert 0 not in window and 2 not in window
        assert 3 in window and 4 in window

    def test_membership_follows_time_expiry(self):
        window = TimeBasedWindow(span=5.0)
        window.insert(make_document(0, {0: 0.5}, arrival_time=0.0))
        window.insert(make_document(1, {0: 0.5}, arrival_time=3.0))
        assert 0 in window
        window.advance_time(6.0)
        assert 0 not in window and 1 in window

    def test_duplicate_ids_survive_single_expiry(self):
        # The base window does not forbid duplicate ids; membership must
        # stay true while at least one copy is valid.
        window = CountBasedWindow(2)
        window.insert(make_document(7, {0: 0.5}, arrival_time=0.0))
        window.insert(make_document(7, {0: 0.5}, arrival_time=1.0))
        window.insert(make_document(8, {0: 0.5}, arrival_time=2.0))  # expires one 7
        assert 7 in window
        window.insert(make_document(9, {0: 0.5}, arrival_time=3.0))  # expires the other
        assert 7 not in window


class TestWindowSpecErrorContract:
    """Every from_dict failure is a ConfigurationError naming the problem
    (WAL and checkpoint decoding rely on the single exception type)."""

    def test_missing_size_raises_configuration_error(self):
        from repro.documents.window import WindowSpec

        with pytest.raises(ConfigurationError, match="size"):
            WindowSpec.from_dict({"type": "count"})

    def test_missing_span_raises_configuration_error(self):
        from repro.documents.window import WindowSpec

        with pytest.raises(ConfigurationError, match="span"):
            WindowSpec.from_dict({"type": "time"})

    def test_unknown_kind_raises_configuration_error(self):
        from repro.documents.window import WindowSpec

        with pytest.raises(ConfigurationError, match="unknown window kind"):
            WindowSpec.from_dict({"type": "sliding?"})
