"""Tests for the document model."""

import math

import pytest

from repro.documents.document import CompositionList, Document, StreamedDocument
from repro.exceptions import DocumentError


class TestCompositionList:
    def test_basic_lookup(self):
        comp = CompositionList({1: 0.5, 2: 0.25})
        assert comp.weight(1) == 0.5
        assert comp.weight(3) == 0.0
        assert 1 in comp and 3 not in comp
        assert len(comp) == 2

    def test_zero_weights_dropped(self):
        comp = CompositionList({1: 0.5, 2: 0.0})
        assert 2 not in comp
        assert len(comp) == 1

    def test_negative_weight_rejected(self):
        with pytest.raises(DocumentError):
            CompositionList({1: -0.1})

    def test_non_finite_weight_rejected(self):
        with pytest.raises(DocumentError):
            CompositionList({1: float("nan")})
        with pytest.raises(DocumentError):
            CompositionList({1: float("inf")})

    def test_invalid_term_id_rejected(self):
        with pytest.raises(DocumentError):
            CompositionList({-1: 0.5})
        with pytest.raises(DocumentError):
            CompositionList({"a": 0.5})

    def test_weights_are_read_only(self):
        comp = CompositionList({1: 0.5})
        with pytest.raises(TypeError):
            comp.weights[2] = 0.7  # type: ignore[index]

    def test_equality(self):
        assert CompositionList({1: 0.5}) == CompositionList({1: 0.5})
        assert CompositionList({1: 0.5}) != CompositionList({1: 0.6})

    def test_norm(self):
        comp = CompositionList({1: 3.0, 2: 4.0})
        assert comp.norm() == pytest.approx(5.0)

    def test_iteration_and_items(self):
        comp = CompositionList({1: 0.5, 7: 0.2})
        assert set(comp) == {1, 7}
        assert dict(comp.items()) == {1: 0.5, 7: 0.2}


class TestDocument:
    def test_accessors(self):
        doc = Document(doc_id=5, composition=CompositionList({1: 0.4}), text="hello")
        assert doc.weight(1) == 0.4
        assert list(doc.terms()) == [1]
        assert len(doc) == 1
        assert doc.text == "hello"

    def test_negative_id_rejected(self):
        with pytest.raises(DocumentError):
            Document(doc_id=-1, composition=CompositionList({1: 0.4}))

    def test_metadata_defaults_to_empty(self):
        doc = Document(doc_id=0, composition=CompositionList({1: 0.4}))
        assert dict(doc.metadata) == {}

    def test_documents_are_frozen(self):
        doc = Document(doc_id=0, composition=CompositionList({1: 0.4}))
        with pytest.raises(AttributeError):
            doc.doc_id = 3  # type: ignore[misc]


class TestStreamedDocument:
    def test_delegating_accessors(self):
        doc = Document(doc_id=3, composition=CompositionList({2: 0.9}))
        streamed = StreamedDocument(document=doc, arrival_time=12.5)
        assert streamed.doc_id == 3
        assert streamed.composition.weight(2) == 0.9
        assert streamed.arrival_time == 12.5

    def test_non_finite_arrival_time_rejected(self):
        doc = Document(doc_id=3, composition=CompositionList({2: 0.9}))
        with pytest.raises(DocumentError):
            StreamedDocument(document=doc, arrival_time=math.inf)
