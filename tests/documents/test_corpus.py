"""Tests for the corpus implementations, including the WSJ stand-in."""

import math

import pytest

from repro.documents.corpus import (
    FileCorpus,
    InMemoryCorpus,
    SyntheticCorpus,
    SyntheticCorpusConfig,
)
from repro.exceptions import ConfigurationError
from repro.text.analyzer import Analyzer
from repro.text.vocabulary import Vocabulary
from repro.weighting.schemes import OkapiBM25Weighting


class TestInMemoryCorpus:
    def test_documents_get_sequential_ids(self):
        corpus = InMemoryCorpus(["first story", "second story"])
        docs = list(corpus)
        assert [d.doc_id for d in docs] == [0, 1]

    def test_first_doc_id_offset(self):
        corpus = InMemoryCorpus(["a story"], first_doc_id=10)
        assert next(iter(corpus)).doc_id == 10

    def test_composition_uses_shared_vocabulary(self):
        vocabulary = Vocabulary()
        analyzer = Analyzer()
        corpus = InMemoryCorpus(["market rally", "market crash"], analyzer=analyzer, vocabulary=vocabulary)
        docs = list(corpus)
        market_id = vocabulary.id_of("market")
        assert docs[0].weight(market_id) > 0
        assert docs[1].weight(market_id) > 0

    def test_cosine_weights_are_normalised(self):
        corpus = InMemoryCorpus(["alpha beta beta"])
        doc = next(iter(corpus))
        norm = math.sqrt(sum(w * w for w in doc.composition.weights.values()))
        assert norm == pytest.approx(1.0)

    def test_metadata_alignment_enforced(self):
        with pytest.raises(ConfigurationError):
            InMemoryCorpus(["a", "b"], metadata=[{"k": "v"}])

    def test_metadata_attached(self):
        corpus = InMemoryCorpus(["a story"], metadata=[{"source": "reuters"}])
        assert next(iter(corpus)).metadata["source"] == "reuters"

    def test_len(self):
        assert len(InMemoryCorpus(["a", "b", "c"])) == 3


class TestFileCorpus:
    def test_reads_text_files_in_sorted_order(self, tmp_path):
        (tmp_path / "b.txt").write_text("second document about markets")
        (tmp_path / "a.txt").write_text("first document about weather")
        corpus = FileCorpus(tmp_path)
        docs = list(corpus)
        assert len(docs) == 2
        assert docs[0].metadata["path"].endswith("a.txt")
        assert docs[1].doc_id == 1

    def test_missing_root_rejected(self, tmp_path):
        with pytest.raises(ConfigurationError):
            FileCorpus(tmp_path / "does-not-exist")

    def test_pattern_filters_files(self, tmp_path):
        (tmp_path / "keep.txt").write_text("keep me")
        (tmp_path / "skip.csv").write_text("skip me")
        assert len(list(FileCorpus(tmp_path, pattern="*.txt"))) == 1


class TestSyntheticCorpusConfig:
    def test_validation(self):
        with pytest.raises(ConfigurationError):
            SyntheticCorpusConfig(dictionary_size=0).validate()
        with pytest.raises(ConfigurationError):
            SyntheticCorpusConfig(min_document_length=0).validate()
        with pytest.raises(ConfigurationError):
            SyntheticCorpusConfig(min_document_length=10, max_document_length=5).validate()
        with pytest.raises(ConfigurationError):
            SyntheticCorpusConfig(sigma_log_length=0).validate()


class TestSyntheticCorpus:
    @pytest.fixture
    def corpus(self):
        return SyntheticCorpus(SyntheticCorpusConfig(dictionary_size=500, seed=3))

    def test_reproducible_with_seed(self):
        a = SyntheticCorpus(SyntheticCorpusConfig(dictionary_size=200, seed=5)).take(5)
        b = SyntheticCorpus(SyntheticCorpusConfig(dictionary_size=200, seed=5)).take(5)
        assert [dict(x.composition.items()) for x in a] == [dict(y.composition.items()) for y in b]

    def test_document_lengths_respect_bounds(self):
        config = SyntheticCorpusConfig(
            dictionary_size=100, min_document_length=5, max_document_length=30, seed=1
        )
        corpus = SyntheticCorpus(config)
        for doc in corpus.take(30):
            # distinct terms can be fewer than tokens but never more than max
            assert 1 <= len(doc) <= 30

    def test_term_ids_within_dictionary(self, corpus):
        for doc in corpus.take(20):
            assert all(0 <= t < 500 for t in doc.terms())

    def test_vocabulary_is_frozen_and_sized(self, corpus):
        assert corpus.vocabulary.frozen
        assert len(corpus.vocabulary) == 500

    def test_take_validates_count(self, corpus):
        with pytest.raises(ConfigurationError):
            corpus.take(-1)

    def test_doc_ids_increase(self, corpus):
        docs = corpus.take(10)
        assert [d.doc_id for d in docs] == list(range(10))

    def test_zipfian_head_terms_more_common(self):
        corpus = SyntheticCorpus(SyntheticCorpusConfig(dictionary_size=1000, seed=2))
        head_hits = 0
        tail_hits = 0
        for doc in corpus.take(150):
            for term in doc.terms():
                if term < 10:
                    head_hits += 1
                elif term >= 900:
                    tail_hits += 1
        assert head_hits > tail_hits

    def test_sample_query_terms_distinct_and_in_range(self, corpus):
        terms = corpus.sample_query_terms(10)
        assert len(terms) == len(set(terms)) == 10
        assert all(0 <= t < 500 for t in terms)

    def test_sample_query_terms_uniform_mode(self, corpus):
        terms = corpus.sample_query_terms(10, skew_towards_frequent=False)
        assert len(set(terms)) == 10

    def test_sample_query_terms_validation(self, corpus):
        with pytest.raises(ConfigurationError):
            corpus.sample_query_terms(0)
        with pytest.raises(ConfigurationError):
            corpus.sample_query_terms(501)

    def test_custom_weighting_scheme(self):
        corpus = SyntheticCorpus(
            SyntheticCorpusConfig(dictionary_size=100, seed=4),
            weighting=OkapiBM25Weighting(),
        )
        doc = corpus.generate_document()
        assert all(w > 0 for w in doc.composition.weights.values())

    def test_small_vocabulary_rejected(self):
        small_vocab = Vocabulary(["only", "two"])
        with pytest.raises(ConfigurationError):
            SyntheticCorpus(SyntheticCorpusConfig(dictionary_size=100), vocabulary=small_vocab)
