"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import random
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import pytest

from repro.documents.document import CompositionList, Document, StreamedDocument
from repro.query.query import ContinuousQuery


# --------------------------------------------------------------------------- #
# document construction helpers
# --------------------------------------------------------------------------- #
def make_document(doc_id: int, weights: Dict[int, float], arrival_time: float = 0.0) -> StreamedDocument:
    """Build a streamed document directly from a ``{term_id: weight}`` map."""
    return StreamedDocument(
        document=Document(doc_id=doc_id, composition=CompositionList(weights)),
        arrival_time=arrival_time,
    )


def make_query(query_id: int, weights: Dict[int, float], k: int = 2) -> ContinuousQuery:
    """Build a query directly from a ``{term_id: weight}`` map."""
    return ContinuousQuery(query_id=query_id, weights=weights, k=k)


class StreamCase:
    """A randomly generated (queries, documents) workload for equivalence tests.

    Weights are drawn from a small discrete grid so that score ties do
    occur and the tie-handling of all engines gets exercised.
    """

    def __init__(
        self,
        seed: int,
        num_terms: int = 12,
        num_queries: int = 8,
        num_documents: int = 120,
        max_query_terms: int = 4,
        max_doc_terms: int = 5,
        k_range: Tuple[int, int] = (1, 4),
    ) -> None:
        rng = random.Random(seed)
        self.seed = seed
        weight_grid = [0.1, 0.2, 0.25, 0.5, 0.75, 1.0]
        self.queries: List[ContinuousQuery] = []
        for query_id in range(num_queries):
            n_terms = rng.randint(1, max_query_terms)
            terms = rng.sample(range(num_terms), n_terms)
            weights = {t: rng.choice(weight_grid) for t in terms}
            k = rng.randint(*k_range)
            self.queries.append(ContinuousQuery(query_id=query_id, weights=weights, k=k))
        self.documents: List[StreamedDocument] = []
        clock = 0.0
        for doc_id in range(num_documents):
            clock += rng.choice([0.1, 0.5, 1.0, 2.0])
            n_terms = rng.randint(0, max_doc_terms)
            terms = rng.sample(range(num_terms), n_terms) if n_terms else []
            weights = {t: rng.choice(weight_grid) for t in terms}
            self.documents.append(make_document(doc_id, weights, arrival_time=clock))


def score_signature(entries: Sequence) -> List[float]:
    """The sorted score list of a result -- the tie-tolerant comparison key."""
    return [round(entry.score, 9) for entry in entries]


def assert_same_topk(reference: Sequence, candidate: Sequence, context: str = "") -> None:
    """Assert two top-k results agree up to ties at equal scores.

    The score sequences must match exactly; document ids must match except
    where scores tie (any document achieving the tied score is acceptable).
    """
    assert score_signature(reference) == score_signature(candidate), (
        f"score sequences differ {context}: "
        f"{score_signature(reference)} != {score_signature(candidate)}"
    )
    ref_by_score: Dict[float, set] = {}
    for entry in reference:
        ref_by_score.setdefault(round(entry.score, 9), set()).add(entry.doc_id)
    for entry in candidate:
        key = round(entry.score, 9)
        # A candidate document is acceptable if some reference document has
        # the same score -- this only relaxes the comparison at exact ties.
        assert key in ref_by_score, f"unexpected score {key} {context}"


@pytest.fixture
def tiny_documents() -> List[StreamedDocument]:
    """Five small hand-written documents over terms 0..3."""
    return [
        make_document(0, {0: 0.9, 1: 0.1}, arrival_time=1.0),
        make_document(1, {1: 0.8, 2: 0.2}, arrival_time=2.0),
        make_document(2, {0: 0.5, 2: 0.5}, arrival_time=3.0),
        make_document(3, {2: 0.7, 3: 0.3}, arrival_time=4.0),
        make_document(4, {0: 0.2, 3: 0.9}, arrival_time=5.0),
    ]
