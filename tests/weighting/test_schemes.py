"""Tests for the cosine and Okapi weighting schemes."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import ConfigurationError
from repro.weighting.schemes import (
    CosineWeighting,
    OkapiBM25Weighting,
    dot_product,
)


class TestDotProduct:
    def test_iterates_common_terms_only(self):
        assert dot_product({1: 0.5, 2: 0.5}, {2: 0.4, 3: 0.9}) == pytest.approx(0.2)

    def test_disjoint_vectors_score_zero(self):
        assert dot_product({1: 1.0}, {2: 1.0}) == 0.0

    def test_symmetric(self):
        a = {1: 0.3, 2: 0.7}
        b = {2: 0.5, 3: 0.5}
        assert dot_product(a, b) == pytest.approx(dot_product(b, a))

    def test_empty_vectors(self):
        assert dot_product({}, {1: 1.0}) == 0.0
        assert dot_product({1: 1.0}, {}) == 0.0


class TestCosineWeighting:
    def test_document_weights_are_unit_norm(self):
        weights = CosineWeighting().document_weights({1: 3, 2: 4})
        norm = math.sqrt(sum(w * w for w in weights.values()))
        assert norm == pytest.approx(1.0)
        assert weights[2] > weights[1]

    def test_matches_paper_formula(self):
        # w_{d,t} = f / sqrt(sum f^2): frequencies 1 and 2 -> 1/sqrt(5), 2/sqrt(5)
        weights = CosineWeighting().document_weights({10: 1, 20: 2})
        assert weights[10] == pytest.approx(1 / math.sqrt(5))
        assert weights[20] == pytest.approx(2 / math.sqrt(5))

    def test_query_weights_normalised_over_query_terms_only(self):
        # Query {white white tower}: frequencies 2 and 1.
        weights = CosineWeighting().query_weights({0: 2, 1: 1})
        assert weights[0] == pytest.approx(2 / math.sqrt(5))
        assert weights[1] == pytest.approx(1 / math.sqrt(5))

    def test_zero_and_negative_frequencies_ignored(self):
        weights = CosineWeighting().document_weights({1: 0, 2: 3})
        assert 1 not in weights

    def test_empty_document(self):
        assert CosineWeighting().document_weights({}) == {}

    def test_log_tf_damps_high_frequencies(self):
        plain = CosineWeighting(log_tf=False).document_weights({1: 100, 2: 1})
        damped = CosineWeighting(log_tf=True).document_weights({1: 100, 2: 1})
        assert damped[2] > plain[2]

    def test_identical_documents_have_similarity_one(self):
        scheme = CosineWeighting()
        doc = scheme.document_weights({1: 2, 2: 5, 3: 1})
        assert dot_product(doc, doc) == pytest.approx(1.0)

    @given(
        st.dictionaries(
            st.integers(min_value=0, max_value=50),
            st.integers(min_value=1, max_value=20),
            min_size=1,
            max_size=10,
        )
    )
    @settings(max_examples=100, deadline=None)
    def test_weights_always_unit_norm(self, frequencies):
        weights = CosineWeighting().document_weights(frequencies)
        norm = math.sqrt(sum(w * w for w in weights.values()))
        assert norm == pytest.approx(1.0)

    @given(
        st.dictionaries(st.integers(0, 30), st.integers(1, 9), min_size=1, max_size=8),
        st.dictionaries(st.integers(0, 30), st.integers(1, 9), min_size=1, max_size=8),
    )
    @settings(max_examples=100, deadline=None)
    def test_cosine_similarity_bounded_by_one(self, query_freqs, doc_freqs):
        scheme = CosineWeighting()
        score = dot_product(scheme.query_weights(query_freqs), scheme.document_weights(doc_freqs))
        assert -1e-9 <= score <= 1.0 + 1e-9


class TestOkapiBM25Weighting:
    def test_parameter_validation(self):
        with pytest.raises(ConfigurationError):
            OkapiBM25Weighting(k1=-1)
        with pytest.raises(ConfigurationError):
            OkapiBM25Weighting(b=2.0)
        with pytest.raises(ConfigurationError):
            OkapiBM25Weighting(average_document_length=0)

    def test_document_weights_saturate_with_frequency(self):
        scheme = OkapiBM25Weighting(k1=1.2, b=0.0)
        low = scheme.document_weights({1: 1})[1]
        high = scheme.document_weights({1: 100})[1]
        assert low < high < scheme.k1 + 1.0  # bounded by k1 + 1

    def test_length_normalisation_penalises_long_documents(self):
        scheme = OkapiBM25Weighting(average_document_length=10.0)
        short = scheme.document_weights({1: 2, 2: 2})[1]
        long_doc = {i: 2 for i in range(20)}
        long = scheme.document_weights(long_doc)[1]
        assert long < short

    def test_query_weights_scale_with_frequency_and_idf(self):
        scheme = OkapiBM25Weighting(idf_provider={1: 2.0, 2: 0.5})
        weights = scheme.query_weights({1: 1, 2: 2})
        assert weights[1] == pytest.approx(2.0)
        assert weights[2] == pytest.approx(1.0)

    def test_empty_document(self):
        assert OkapiBM25Weighting().document_weights({}) == {}

    def test_idf_snapshot_constructor(self):
        scheme = OkapiBM25Weighting.with_idf_snapshot(
            document_frequencies={1: 1, 2: 90},
            collection_size=100,
        )
        rare = scheme.query_weights({1: 1})[1]
        common = scheme.query_weights({2: 1})[2]
        assert rare > common

    def test_idf_snapshot_requires_positive_collection(self):
        with pytest.raises(ConfigurationError):
            OkapiBM25Weighting.with_idf_snapshot({}, collection_size=0)

    def test_scores_are_non_negative(self):
        scheme = OkapiBM25Weighting()
        score = dot_product(scheme.query_weights({1: 1}), scheme.document_weights({1: 3, 2: 1}))
        assert score > 0.0
