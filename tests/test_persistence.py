"""Tests for engine-state snapshot and restore."""

import json

import pytest

from repro.baselines.naive import NaiveEngine
from repro.core.descent import ProbeOrder
from repro.core.engine import ITAEngine
from repro.documents.window import CountBasedWindow, TimeBasedWindow
from repro.exceptions import ConfigurationError
from repro.persistence import restore_engine, snapshot_engine
from tests.conftest import StreamCase, assert_same_topk, make_document, make_query


def populated_ita(window_size=10, num_documents=40):
    engine = ITAEngine(CountBasedWindow(window_size))
    engine.register_query(make_query(0, {1: 0.5, 2: 0.5}, k=3))
    engine.register_query(make_query(1, {3: 1.0}, k=2))
    import random

    rng = random.Random(5)
    for doc_id in range(num_documents):
        weights = {t: round(rng.uniform(0.1, 1.0), 3) for t in rng.sample(range(5), rng.randint(1, 3))}
        engine.process(make_document(doc_id, weights, arrival_time=float(doc_id)))
    return engine


class TestSnapshotFormat:
    def test_snapshot_is_json_serialisable(self):
        snapshot = snapshot_engine(populated_ita())
        text = json.dumps(snapshot)
        assert json.loads(text)["version"] == 1

    def test_snapshot_captures_window_and_queries(self):
        snapshot = snapshot_engine(populated_ita(window_size=7))
        assert snapshot["window"] == {"type": "count", "size": 7}
        assert len(snapshot["queries"]) == 2

    def test_snapshot_only_holds_valid_documents(self):
        engine = populated_ita(window_size=5, num_documents=40)
        snapshot = snapshot_engine(engine)
        assert len(snapshot["documents"]) == 5

    def test_time_based_window_snapshot(self):
        engine = ITAEngine(TimeBasedWindow(span=10.0))
        engine.register_query(make_query(0, {1: 1.0}, k=1))
        engine.process(make_document(0, {1: 0.5}, arrival_time=0.0))
        snapshot = snapshot_engine(engine)
        assert snapshot["window"] == {"type": "time", "span": 10.0}


class TestRestore:
    def test_roundtrip_preserves_results(self):
        original = populated_ita()
        snapshot = snapshot_engine(original)
        restored = restore_engine(snapshot)
        for query_id in original.query_ids():
            assert_same_topk(
                original.current_result(query_id),
                restored.current_result(query_id),
                context=f"(query {query_id})",
            )
        restored.check_invariants()

    def test_restore_into_a_baseline_engine(self):
        original = populated_ita()
        snapshot = snapshot_engine(original)
        restored = restore_engine(snapshot, engine_factory=lambda w: NaiveEngine(w))
        assert isinstance(restored, NaiveEngine)
        for query_id in original.query_ids():
            assert_same_topk(
                original.current_result(query_id),
                restored.current_result(query_id),
            )

    def test_restored_engine_continues_streaming(self):
        original = populated_ita(window_size=10)
        restored = restore_engine(snapshot_engine(original))
        # Feed more documents into both; they must stay in agreement.
        for doc_id in range(100, 120):
            document = make_document(doc_id, {1: 0.4, 2: 0.6}, arrival_time=float(doc_id))
            original.process(document)
            restored.process(document)
        for query_id in original.query_ids():
            assert_same_topk(
                original.current_result(query_id),
                restored.current_result(query_id),
            )

    def test_unsupported_version_rejected(self):
        snapshot = snapshot_engine(populated_ita())
        snapshot["version"] = 99
        with pytest.raises(ConfigurationError):
            restore_engine(snapshot)

    def test_unknown_window_type_rejected(self):
        snapshot = snapshot_engine(populated_ita())
        snapshot["window"] = {"type": "sliding-sideways"}
        with pytest.raises(ConfigurationError):
            restore_engine(snapshot)

    def test_snapshot_of_empty_engine(self):
        engine = ITAEngine(CountBasedWindow(5))
        engine.register_query(make_query(0, {1: 1.0}, k=2))
        restored = restore_engine(snapshot_engine(engine))
        assert restored.current_result(0) == []


class TestConfigRoundTrip:
    """The engine construction knobs must survive a snapshot round-trip."""

    def test_ita_defaults_preserved(self):
        restored = restore_engine(snapshot_engine(populated_ita()))
        assert isinstance(restored, ITAEngine)
        assert restored.probe_order is ProbeOrder.WEIGHTED
        assert restored.enable_rollup is True
        assert restored.track_changes is True

    def test_non_default_ita_config_preserved(self):
        engine = ITAEngine(
            CountBasedWindow(8),
            track_changes=False,
            enable_rollup=False,
            probe_order=ProbeOrder.ROUND_ROBIN,
        )
        engine.register_query(make_query(0, {1: 0.5, 2: 0.5}, k=2))
        for doc_id in range(12):
            engine.process(make_document(doc_id, {1: 0.4, 2: 0.3}, arrival_time=float(doc_id)))

        snapshot = snapshot_engine(engine)
        assert snapshot["config"] == {
            "probe_order": "round_robin",
            "enable_rollup": False,
            "track_changes": False,
            "storage": "bisect",
        }
        restored = restore_engine(snapshot)
        assert restored.probe_order is ProbeOrder.ROUND_ROBIN
        assert restored.enable_rollup is False
        assert restored.track_changes is False
        assert restored.index.backend.name == "bisect"
        for query_id in engine.query_ids():
            assert_same_topk(
                engine.current_result(query_id), restored.current_result(query_id)
            )

    def test_window_type_preserved(self):
        engine = ITAEngine(TimeBasedWindow(span=7.5))
        engine.register_query(make_query(0, {1: 1.0}, k=1))
        engine.process(make_document(0, {1: 0.5}, arrival_time=0.0))
        restored = restore_engine(snapshot_engine(engine))
        assert isinstance(restored.window, TimeBasedWindow)
        assert restored.window.span == 7.5

    def test_explicit_factory_overrides_snapshotted_config(self):
        engine = ITAEngine(CountBasedWindow(5), probe_order=ProbeOrder.ROUND_ROBIN)
        engine.register_query(make_query(0, {1: 1.0}, k=1))
        restored = restore_engine(
            snapshot_engine(engine), engine_factory=lambda w: ITAEngine(w)
        )
        assert restored.probe_order is ProbeOrder.WEIGHTED

    def test_config_free_snapshot_restores_with_defaults(self):
        snapshot = snapshot_engine(populated_ita())
        del snapshot["config"]
        restored = restore_engine(snapshot)
        assert restored.probe_order is ProbeOrder.WEIGHTED
        assert restored.enable_rollup is True
