"""Tests for the query registry."""

import pytest

from repro.exceptions import DuplicateQueryError, UnknownQueryError
from repro.query.registry import QueryRegistry
from tests.conftest import make_query


class TestQueryRegistry:
    def test_register_and_lookup(self):
        registry = QueryRegistry()
        query = make_query(0, {1: 0.5})
        registry.register(query)
        assert registry.get(0) is query
        assert registry.find(0) is query
        assert 0 in registry
        assert len(registry) == 1
        assert registry.query_ids() == [0]

    def test_duplicate_id_rejected(self):
        registry = QueryRegistry()
        registry.register(make_query(3, {1: 0.5}))
        with pytest.raises(DuplicateQueryError):
            registry.register(make_query(3, {2: 0.5}))

    def test_unregister(self):
        registry = QueryRegistry()
        registry.register(make_query(1, {1: 0.5}))
        removed = registry.unregister(1)
        assert removed.query_id == 1
        assert 1 not in registry
        with pytest.raises(UnknownQueryError):
            registry.unregister(1)

    def test_get_unknown_raises_find_returns_none(self):
        registry = QueryRegistry()
        with pytest.raises(UnknownQueryError):
            registry.get(9)
        assert registry.find(9) is None

    def test_allocate_id_skips_registered_ids(self):
        registry = QueryRegistry()
        registry.register(make_query(5, {1: 0.5}))
        assert registry.allocate_id() == 6
        assert registry.allocate_id() == 7

    def test_iteration(self):
        registry = QueryRegistry()
        for query_id in range(3):
            registry.register(make_query(query_id, {1: 0.5}))
        assert [q.query_id for q in registry] == [0, 1, 2]
