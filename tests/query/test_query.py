"""Tests for continuous queries."""

import math

import pytest

from repro.documents.document import CompositionList
from repro.exceptions import QueryError
from repro.query.query import ContinuousQuery
from repro.text.analyzer import Analyzer
from repro.text.vocabulary import Vocabulary
from repro.weighting.schemes import CosineWeighting


class TestConstruction:
    def test_basic(self):
        query = ContinuousQuery(0, {1: 0.5, 2: 0.5}, k=3)
        assert len(query) == 2
        assert query.k == 3
        assert 1 in query and 9 not in query
        assert query.weight(1) == 0.5
        assert query.weight(9) == 0.0
        assert sorted(query.terms()) == [1, 2]

    def test_k_must_be_positive(self):
        with pytest.raises(QueryError):
            ContinuousQuery(0, {1: 0.5}, k=0)

    def test_weights_must_be_valid(self):
        with pytest.raises(QueryError):
            ContinuousQuery(0, {1: -0.5}, k=1)
        with pytest.raises(QueryError):
            ContinuousQuery(0, {1: float("nan")}, k=1)

    def test_zero_weights_dropped_and_empty_rejected(self):
        with pytest.raises(QueryError):
            ContinuousQuery(0, {1: 0.0}, k=1)
        query = ContinuousQuery(0, {1: 0.0, 2: 0.3}, k=1)
        assert 1 not in query

    def test_equality_and_hash(self):
        a = ContinuousQuery(0, {1: 0.5}, k=2)
        b = ContinuousQuery(0, {1: 0.5}, k=2)
        c = ContinuousQuery(0, {1: 0.6}, k=2)
        assert a == b and hash(a) == hash(b)
        assert a != c


class TestFromText:
    @pytest.fixture
    def env(self):
        return Analyzer(), Vocabulary()

    def test_repeated_terms_increase_weight(self, env):
        analyzer, vocabulary = env
        # The paper's example query {white white tower}.
        query = ContinuousQuery.from_text(0, "white white tower", k=2,
                                          analyzer=analyzer, vocabulary=vocabulary)
        white = vocabulary.id_of("white")
        tower = vocabulary.id_of("tower")
        assert query.weight(white) == pytest.approx(2 / math.sqrt(5))
        assert query.weight(tower) == pytest.approx(1 / math.sqrt(5))
        assert query.text == "white white tower"

    def test_analysis_matches_documents(self, env):
        analyzer, vocabulary = env
        query = ContinuousQuery.from_text(0, "Weapons of Mass Destruction", k=5,
                                          analyzer=analyzer, vocabulary=vocabulary)
        assert vocabulary.get_id("weapon") is not None
        assert len(query) == 3  # "of" removed by stop-wording

    def test_stopword_only_query_rejected(self, env):
        analyzer, vocabulary = env
        with pytest.raises(QueryError):
            ContinuousQuery.from_text(0, "the and of", k=1,
                                      analyzer=analyzer, vocabulary=vocabulary)

    def test_frozen_vocabulary_drops_unknown_terms(self):
        analyzer = Analyzer()
        vocabulary = Vocabulary(["market"])
        vocabulary.freeze()
        query = ContinuousQuery.from_text(0, "market meltdown", k=1,
                                          analyzer=analyzer, vocabulary=vocabulary,
                                          allow_unknown_terms=False)
        assert len(query) == 1

    def test_frozen_vocabulary_with_no_known_terms_rejected(self):
        analyzer = Analyzer()
        vocabulary = Vocabulary(["market"])
        vocabulary.freeze()
        with pytest.raises(QueryError):
            ContinuousQuery.from_text(0, "meltdown", k=1,
                                      analyzer=analyzer, vocabulary=vocabulary,
                                      allow_unknown_terms=False)


class TestFromTermIds:
    def test_unit_frequencies(self):
        query = ContinuousQuery.from_term_ids(3, [5, 9, 11], k=10)
        assert query.query_id == 3
        assert len(query) == 3
        # cosine weights of three unit frequencies: 1/sqrt(3) each
        assert query.weight(5) == pytest.approx(1 / math.sqrt(3))

    def test_repeated_term_ids_accumulate(self):
        query = ContinuousQuery.from_term_ids(0, [5, 5, 9], k=1)
        assert query.weight(5) > query.weight(9)


class TestScoring:
    def test_score_matches_formula(self):
        scheme = CosineWeighting()
        query = ContinuousQuery(0, scheme.query_weights({1: 1, 2: 1}), k=1)
        composition = CompositionList(scheme.document_weights({1: 2, 3: 1}))
        expected = query.weight(1) * composition.weight(1)
        assert query.score(composition) == pytest.approx(expected)

    def test_score_zero_for_disjoint_documents(self):
        query = ContinuousQuery(0, {1: 1.0}, k=1)
        assert query.score(CompositionList({2: 0.4})) == 0.0

    def test_score_weights_variant(self):
        query = ContinuousQuery(0, {1: 0.5, 2: 0.5}, k=1)
        assert query.score_weights({1: 0.4}) == pytest.approx(0.2)

    def test_max_possible_score(self):
        query = ContinuousQuery(0, {1: 0.6, 2: 0.8}, k=1)
        tau = query.max_possible_score({1: 0.1, 2: 0.2})
        assert tau == pytest.approx(0.6 * 0.1 + 0.8 * 0.2)
        assert query.max_possible_score({}) == 0.0
