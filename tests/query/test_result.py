"""Tests for the result container R."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import UnknownDocumentError
from repro.query.result import ResultEntry, ResultList


@pytest.fixture
def results():
    r = ResultList()
    r.add(6, 0.19)
    r.add(2, 0.17)
    r.add(7, 0.15)
    return r


class TestUpdates:
    def test_add_and_lookup(self, results):
        assert len(results) == 3
        assert 6 in results and 9 not in results
        assert results.score_of(2) == pytest.approx(0.17)
        assert results.get(9) is None

    def test_add_updates_existing_score(self, results):
        results.add(7, 0.30)
        assert results.score_of(7) == pytest.approx(0.30)
        assert len(results) == 3
        assert results.top(1)[0].doc_id == 7

    def test_remove(self, results):
        assert results.remove(2) == pytest.approx(0.17)
        assert 2 not in results
        with pytest.raises(UnknownDocumentError):
            results.remove(2)

    def test_discard(self, results):
        assert results.discard(6) == pytest.approx(0.19)
        assert results.discard(6) is None

    def test_clear(self, results):
        results.clear()
        assert len(results) == 0
        assert results.top(3) == []

    def test_score_of_unknown_raises(self, results):
        with pytest.raises(UnknownDocumentError):
            results.score_of(99)


class TestRankedViews:
    def test_iteration_descends_by_score(self, results):
        assert [entry.doc_id for entry in results] == [6, 2, 7]

    def test_top_k(self, results):
        assert [entry.doc_id for entry in results.top(2)] == [6, 2]
        assert results.top(0) == []
        assert len(results.top(10)) == 3

    def test_kth_score(self, results):
        assert results.kth_score(1) == pytest.approx(0.19)
        assert results.kth_score(3) == pytest.approx(0.15)
        assert results.kth_score(4) == 0.0
        assert results.kth_score(0) == 0.0

    def test_min_score(self, results):
        assert results.min_score() == pytest.approx(0.15)
        assert ResultList().min_score() == 0.0

    def test_is_in_top_k(self, results):
        assert results.is_in_top_k(6, 1)
        assert not results.is_in_top_k(2, 1)
        assert results.is_in_top_k(2, 2)
        assert not results.is_in_top_k(99, 3)

    def test_count_at_or_above(self, results):
        assert results.count_at_or_above(0.19) == 1
        assert results.count_at_or_above(0.17) == 2
        assert results.count_at_or_above(0.0) == 3
        assert results.count_at_or_above(0.5) == 0

    def test_tie_break_by_doc_id(self):
        r = ResultList()
        r.add(9, 0.5)
        r.add(3, 0.5)
        assert [entry.doc_id for entry in r.top(2)] == [3, 9]

    def test_documents_and_as_dict(self, results):
        assert results.documents() == [6, 2, 7]
        assert results.as_dict() == {6: 0.19, 2: 0.17, 7: 0.15}


class TestPropertyBased:
    @given(
        st.dictionaries(
            st.integers(min_value=0, max_value=100),
            st.floats(min_value=0.0, max_value=1.0, allow_nan=False),
            min_size=1,
            max_size=40,
        ),
        st.integers(min_value=1, max_value=10),
    )
    @settings(max_examples=120, deadline=None)
    def test_topk_matches_sorted_reference(self, scores, k):
        results = ResultList()
        for doc_id, score in scores.items():
            results.add(doc_id, score)
        expected = sorted(scores.items(), key=lambda kv: (-kv[1], kv[0]))[:k]
        got = [(entry.doc_id, entry.score) for entry in results.top(k)]
        assert got == expected
        results.check_invariants()

    @given(
        st.dictionaries(
            st.integers(min_value=0, max_value=100),
            st.floats(min_value=0.0, max_value=1.0, allow_nan=False),
            min_size=1,
            max_size=40,
        ),
        st.floats(min_value=0.0, max_value=1.0),
    )
    @settings(max_examples=120, deadline=None)
    def test_count_at_or_above_matches_linear_scan(self, scores, threshold):
        results = ResultList()
        for doc_id, score in scores.items():
            results.add(doc_id, score)
        expected = sum(1 for score in scores.values() if score >= threshold)
        assert results.count_at_or_above(threshold) == expected
