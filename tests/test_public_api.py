"""Tests of the top-level public API surface."""

import pytest

import repro


class TestPublicAPI:
    def test_version_exposed(self):
        assert repro.__version__

    def test_all_names_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), f"missing public name {name}"

    def test_engines_share_the_monitoring_interface(self):
        from repro import (
            ITAEngine,
            KMaxNaiveEngine,
            MonitoringEngine,
            NaiveEngine,
            OracleEngine,
            ShardedEngine,
        )

        for engine_class in (ITAEngine, NaiveEngine, KMaxNaiveEngine, OracleEngine, ShardedEngine):
            assert issubclass(engine_class, MonitoringEngine)

    def test_cluster_subsystem_exported(self):
        from repro import (
            CostModelPlacement,
            HashPlacement,
            PlacementPolicy,
            ResultMerger,
            RoundRobinPlacement,
            ShardedEngine,
            restore_cluster,
            snapshot_cluster,
        )

        for policy_class in (RoundRobinPlacement, HashPlacement, CostModelPlacement):
            assert issubclass(policy_class, PlacementPolicy)
        assert callable(snapshot_cluster) and callable(restore_cluster)
        assert hasattr(ResultMerger, "merge_changes")
        assert ShardedEngine.name == "sharded"

    def test_sharded_quickstart_flow(self):
        """The README sharded-cluster quickstart must keep working."""
        from repro import (
            Analyzer,
            ContinuousQuery,
            CountBasedWindow,
            DocumentStream,
            FixedRateArrivalProcess,
            InMemoryCorpus,
            ITAEngine,
            ShardedEngine,
            Vocabulary,
            restore_cluster,
            snapshot_cluster,
        )

        analyzer, vocabulary = Analyzer(), Vocabulary()
        corpus = InMemoryCorpus(
            ["breaking news about markets", "weather update for tomorrow"],
            analyzer=analyzer,
            vocabulary=vocabulary,
        )
        cluster = ShardedEngine(
            num_shards=2,
            window_factory=lambda: CountBasedWindow(100),
            placement="cost",
        )
        single = ITAEngine(CountBasedWindow(100))
        query = ContinuousQuery.from_text(
            0, "market news", k=1, analyzer=analyzer, vocabulary=vocabulary
        )
        cluster.register_query(query)
        single.register_query(query)
        stream = list(DocumentStream(corpus, FixedRateArrivalProcess(rate=1.0)))
        cluster.process_many(stream)
        single.process_many(stream)
        assert cluster.current_result(0) == single.current_result(0)
        restored = restore_cluster(snapshot_cluster(cluster))
        assert restored.current_result(0) == cluster.current_result(0)

    def test_service_facade_exported(self):
        from repro import (
            EngineSpec,
            MonitoringService,
            PlacementCalibration,
            QueryHandle,
            WindowSpec,
            engine_kinds,
            register_engine_kind,
        )

        assert callable(register_engine_kind)
        assert {"ita", "naive", "naive-kmax", "oracle", "sharded"} <= set(engine_kinds())
        assert hasattr(MonitoringService, "subscribe")
        assert hasattr(QueryHandle, "unsubscribe")
        assert EngineSpec().kind == "ita"
        assert WindowSpec.count(10).size == 10
        assert PlacementCalibration().dictionary_size > 0

    def test_service_quickstart_flow(self):
        """The README / module-docstring façade quickstart must keep working."""
        from repro import MonitoringService

        with MonitoringService() as service:
            handle = service.subscribe("market news", k=1)
            service.ingest(
                ["breaking news about markets", "weather update for tomorrow"]
            )
            assert [entry.doc_id for entry in handle.result()] == [0]

    def test_quickstart_flow(self):
        """The README / module-docstring quickstart must keep working."""
        from repro import (
            Analyzer,
            ContinuousQuery,
            CountBasedWindow,
            DocumentStream,
            FixedRateArrivalProcess,
            InMemoryCorpus,
            ITAEngine,
            Vocabulary,
        )

        analyzer, vocabulary = Analyzer(), Vocabulary()
        corpus = InMemoryCorpus(
            ["breaking news about markets", "weather update for tomorrow"],
            analyzer=analyzer,
            vocabulary=vocabulary,
        )
        engine = ITAEngine(CountBasedWindow(100))
        query = ContinuousQuery.from_text(
            0, "market news", k=1, analyzer=analyzer, vocabulary=vocabulary
        )
        engine.register_query(query)
        stream = DocumentStream(corpus, FixedRateArrivalProcess(rate=1.0))
        engine.process_many(stream)
        assert [entry.doc_id for entry in engine.current_result(0)] == [0]

    def test_exceptions_derive_from_reproerror(self):
        from repro.exceptions import (
            ConfigurationError,
            DocumentError,
            QueryError,
            ReproError,
            StreamError,
            WindowError,
        )

        for exc in (ConfigurationError, DocumentError, QueryError, StreamError, WindowError):
            assert issubclass(exc, ReproError)
