"""ProcessClusterEngine: equivalence, supervision, and durability."""

from __future__ import annotations

import os
import signal
import time

import pytest

from repro.cluster.engine import ShardedEngine
from repro.core.engine import ITAEngine
from repro.exceptions import (
    ConfigurationError,
    DuplicateQueryError,
    UnknownQueryError,
    WorkerCrashError,
)
from repro.net.cluster import ProcessClusterEngine
from repro.net.options import ProcOptions
from repro.service import EngineSpec, MonitoringService, WindowSpec
from tests.conftest import StreamCase

WINDOW = 32
FAST = ProcOptions(
    request_timeout_ms=30_000.0, backoff_ms=5.0, checkpoint_every=16
)


def make_cluster(num_workers=2, placement="hash", options=FAST, window=WINDOW):
    return ProcessClusterEngine(
        num_workers=num_workers,
        window_spec=WindowSpec.count(window),
        placement=placement,
        options=options,
    )


def normalize(changes):
    return [
        (
            change.query_id,
            tuple((entry.doc_id, entry.score) for entry in change.entered),
            tuple((entry.doc_id, entry.score) for entry in change.left),
        )
        for change in changes
    ]


@pytest.mark.parametrize("seed", [401, 702])
def test_bit_identical_to_in_process_sharded_cluster(seed):
    case = StreamCase(seed, num_queries=6, num_documents=90)
    reference = ShardedEngine(
        num_shards=2,
        window_factory=lambda: WindowSpec.count(WINDOW).build(),
        engine_factory=lambda window: ITAEngine(window, track_changes=True),
        placement="hash",
    )
    with make_cluster() as cluster:
        for query in case.queries:
            reference.register_query(query)
            cluster.register_query(query)
        for document in case.documents:
            expected = reference.process(document)
            actual = cluster.process(document)
            assert normalize(actual) == normalize(expected)
        assert {
            qid: [(e.doc_id, e.score) for e in result]
            for qid, result in cluster.current_results().items()
        } == {
            qid: [(e.doc_id, e.score) for e in result]
            for qid, result in reference.current_results().items()
        }
        # The counters travel over RPC but must sum to the same work.
        assert cluster.counters.as_dict() == reference.counters.as_dict()
        cluster.check_invariants()


def test_batched_ingest_matches_per_document_changes():
    case = StreamCase(17, num_queries=5, num_documents=60)
    with make_cluster() as batched, make_cluster() as single:
        for query in case.queries:
            batched.register_query(query)
            single.register_query(query)
        per_event = batched.process_batch_events(case.documents)
        one_by_one = [single.process(document) for document in case.documents]
        assert [normalize(event) for event in per_event] == [
            normalize(event) for event in one_by_one
        ]


def test_sigkill_mid_stream_recovers_from_wal_bit_identically():
    case = StreamCase(88, num_queries=6, num_documents=80)
    reference = ShardedEngine(
        num_shards=2,
        window_factory=lambda: WindowSpec.count(WINDOW).build(),
        engine_factory=lambda window: ITAEngine(window, track_changes=True),
        placement="hash",
    )
    with make_cluster() as cluster:
        for query in case.queries:
            reference.register_query(query)
            cluster.register_query(query)
        for index, document in enumerate(case.documents):
            if index == 40:
                victim = cluster.worker_pids()[0]
                os.kill(victim, signal.SIGKILL)
                time.sleep(0.1)  # let the kernel tear the socket down
            expected = reference.process(document)
            actual = cluster.process(document)
            assert normalize(actual) == normalize(expected), f"diverged at doc {index}"
        assert cluster.restart_counts() == [1, 0]
        assert cluster.total_restarts == 1
        assert cluster.worker_pids()[0] != victim
        cluster.check_invariants()


def test_restart_budget_exhaustion_raises_worker_crash():
    options = ProcOptions(max_restarts=0, backoff_ms=1.0, request_timeout_ms=5_000.0)
    cluster = make_cluster(options=options)
    try:
        cluster.register_query(StreamCase(3, num_documents=1).queries[0])
        os.kill(cluster.worker_pids()[0], signal.SIGKILL)
        with pytest.raises(WorkerCrashError):
            for document in StreamCase(3, num_documents=20).documents:
                cluster.process(document)
    finally:
        cluster.close()


def test_typed_errors_cross_the_process_boundary():
    case = StreamCase(5, num_queries=2, num_documents=4)
    with make_cluster() as cluster:
        cluster.register_query(case.queries[0])
        with pytest.raises(DuplicateQueryError):
            cluster.register_query(case.queries[0])
        with pytest.raises(UnknownQueryError):
            cluster.current_result(999)
        with pytest.raises(UnknownQueryError):
            cluster.unregister_query(999)
        # A rejected op must not poison the workers: valid work continues.
        for document in case.documents:
            cluster.process(document)
        cluster.check_invariants()


def test_invalid_construction():
    with pytest.raises(ConfigurationError, match="at least one worker"):
        ProcessClusterEngine(num_workers=0)


def test_close_is_idempotent_and_reaps_workers():
    cluster = make_cluster()
    pids = cluster.worker_pids()
    cluster.close()
    cluster.close()
    for pid in pids:
        deadline = time.monotonic() + 5.0
        while time.monotonic() < deadline:
            try:
                os.kill(pid, 0)
            except ProcessLookupError:
                break
            time.sleep(0.01)
        else:
            pytest.fail(f"worker {pid} outlived close()")


def test_service_snapshot_restores_into_a_fresh_proc_cluster():
    spec = EngineSpec(
        kind="sharded-proc",
        num_shards=2,
        window=WindowSpec.count(WINDOW),
        placement="hash",
        proc=FAST,
    )
    case = StreamCase(64, num_queries=4, num_documents=40)
    service = MonitoringService(spec)
    try:
        handles = {q.query_id: service.subscribe(q) for q in case.queries}
        service.ingest(case.documents[:30])
        snapshot = service.snapshot()
        expected = service.results()
        service.close()

        restored = MonitoringService.restore(snapshot)
        try:
            assert restored.results() == expected
            # The restored cluster keeps working: replay the tail through it.
            restored.ingest(case.documents[30:])
            restored_handles = {qid: restored.handle(qid) for qid in handles}
            reference = MonitoringService(
                EngineSpec(kind="ita", window=WindowSpec.count(WINDOW))
            )
            for query in case.queries:
                reference.subscribe(query)
            reference.ingest(case.documents)
            assert restored.results() == reference.results()
            assert all(handle.active for handle in restored_handles.values())
            reference.close()
        finally:
            restored.close()
    finally:
        service.close()
