"""ProcOptions and the "sharded-proc" EngineSpec: validation + codec."""

from __future__ import annotations

import pytest

from repro.exceptions import ConfigurationError, UnknownEngineError
from repro.net.options import ProcOptions
from repro.service import EngineSpec, WindowSpec, spec_from_name


# --------------------------------------------------------------------------- #
# ProcOptions
# --------------------------------------------------------------------------- #
def test_proc_options_round_trip():
    options = ProcOptions(
        transport="tcp",
        data_dir="/tmp/proc-data",
        request_timeout_ms=5_000.0,
        connect_timeout_ms=2_000.0,
        max_restarts=3,
        backoff_ms=10.0,
        checkpoint_every=64,
        start_method="fork",
    )
    assert ProcOptions.from_dict(options.to_dict()) == options


def test_proc_options_defaults_round_trip_and_omit_data_dir():
    options = ProcOptions()
    encoded = options.to_dict()
    assert "data_dir" not in encoded
    assert ProcOptions.from_dict(encoded) == options
    assert ProcOptions.from_dict({}) == options  # missing keys = defaults


def test_unknown_proc_option_is_named():
    with pytest.raises(ConfigurationError, match="'trnsport'"):
        ProcOptions.from_dict({"trnsport": "unix"})


def test_unknown_transport_is_named():
    with pytest.raises(ConfigurationError, match="transport 'carrier-pigeon'"):
        ProcOptions(transport="carrier-pigeon").validate()
    with pytest.raises(ConfigurationError, match="transport"):
        ProcOptions.from_dict({"transport": "udp"})


@pytest.mark.parametrize(
    "field,value,match",
    [
        ("request_timeout_ms", 0, "request_timeout_ms"),
        ("connect_timeout_ms", -1, "connect_timeout_ms"),
        ("max_restarts", -1, "max_restarts"),
        ("backoff_ms", -0.5, "backoff_ms"),
        ("checkpoint_every", 0, "checkpoint_every"),
        ("start_method", "threads", "start_method"),
    ],
)
def test_invalid_worker_options_name_the_field(field, value, match):
    with pytest.raises(ConfigurationError, match=match):
        ProcOptions(**{field: value}).validate()


# --------------------------------------------------------------------------- #
# EngineSpec integration
# --------------------------------------------------------------------------- #
def test_spec_round_trip_with_proc_options():
    spec = EngineSpec(
        kind="sharded-proc",
        num_shards=3,
        window=WindowSpec.count(64),
        placement="hash",
        proc=ProcOptions(transport="tcp", checkpoint_every=32),
    )
    spec.validate()
    encoded = spec.to_dict()
    assert encoded["proc"]["transport"] == "tcp"
    assert EngineSpec.from_dict(encoded) == spec


def test_spec_without_proc_options_round_trips():
    spec = EngineSpec(kind="sharded-proc", num_shards=2)
    spec.validate()
    encoded = spec.to_dict()
    assert "proc" not in encoded
    assert EngineSpec.from_dict(encoded) == spec


def test_proc_options_on_non_proc_kind_are_rejected():
    spec = EngineSpec(kind="sharded", num_shards=2, proc=ProcOptions())
    with pytest.raises(ConfigurationError, match="sharded-proc"):
        spec.validate()
    with pytest.raises(ConfigurationError, match="sharded-proc"):
        EngineSpec(kind="ita", proc=ProcOptions()).validate()


def test_invalid_proc_options_fail_spec_validation():
    spec = EngineSpec(
        kind="sharded-proc", num_shards=2, proc=ProcOptions(transport="udp")
    )
    with pytest.raises(ConfigurationError, match="transport"):
        spec.validate()


def test_nested_proc_cluster_is_rejected():
    inner = EngineSpec(kind="sharded-proc", num_shards=2)
    spec = EngineSpec(kind="sharded", num_shards=2, inner=inner)
    with pytest.raises(ConfigurationError, match="nested"):
        spec.validate()


def test_spec_from_name_parses_proc_names():
    assert spec_from_name("sharded-proc").kind == "sharded-proc"
    spec = spec_from_name("sharded-proc-4", window=WindowSpec.count(10))
    assert (spec.kind, spec.num_shards) == ("sharded-proc", 4)
    with pytest.raises(UnknownEngineError):
        spec_from_name("sharded-proc-banana")


def test_builds_own_windows_flags_the_cluster_kinds():
    # Both cluster kinds construct their own (per-shard) windows; the
    # restore path must not build one for them.  Plain engines take the
    # restored window through their factory.
    assert EngineSpec(kind="sharded-proc").builds_own_windows()
    assert EngineSpec(kind="sharded").builds_own_windows()
    assert not EngineSpec(kind="ita").builds_own_windows()
    assert not EngineSpec(kind="naive").builds_own_windows()
