"""The framed RPC layer: framing, ids, deadlines, typed errors."""

from __future__ import annotations

import socket
import struct
import threading

import pytest

from repro.exceptions import (
    RpcRemoteError,
    RpcTimeoutError,
    RpcTransportError,
    UnknownQueryError,
)
from repro.net.protocol import (
    MAX_FRAME_BYTES,
    RpcConnection,
    decode_frame,
    encode_frame,
    error_payload,
    raise_remote_error,
    recv_frame,
    send_frame,
)


def socket_pair():
    return socket.socketpair()


# --------------------------------------------------------------------------- #
# framing
# --------------------------------------------------------------------------- #
def test_frame_round_trip():
    payload = {"id": 7, "method": "ingest", "params": {"x": [1.25, "a", None]}}
    frame = encode_frame(payload)
    length = struct.unpack(">I", frame[:4])[0]
    assert length == len(frame) - 4
    assert decode_frame(frame[4:]) == payload


def test_frame_floats_round_trip_exactly():
    scores = [0.1, 1 / 3, 2.5000000000000004, 1e-300]
    frame = encode_frame({"scores": scores})
    assert decode_frame(frame[4:])["scores"] == scores


def test_send_recv_over_socket():
    left, right = socket_pair()
    try:
        send_frame(left, {"id": 1, "ok": True, "result": 42})
        send_frame(left, {"id": 2, "ok": True, "result": "two"})
        assert recv_frame(right)["result"] == 42
        assert recv_frame(right)["result"] == "two"
        left.close()
        assert recv_frame(right) is None  # clean EOF at a frame boundary
    finally:
        right.close()


def test_oversized_length_prefix_is_rejected():
    left, right = socket_pair()
    try:
        left.sendall(struct.pack(">I", MAX_FRAME_BYTES + 1))
        with pytest.raises(RpcTransportError, match="limit"):
            recv_frame(right)
    finally:
        left.close()
        right.close()


def test_torn_frame_is_a_transport_error():
    left, right = socket_pair()
    try:
        frame = encode_frame({"id": 1})
        left.sendall(frame[: len(frame) - 2])
        left.close()
        with pytest.raises(RpcTransportError, match="mid-frame|between length"):
            recv_frame(right)
    finally:
        right.close()


def test_undecodable_frame_is_a_transport_error():
    left, right = socket_pair()
    try:
        body = b"\xff\xfe not json"
        left.sendall(struct.pack(">I", len(body)) + body)
        with pytest.raises(RpcTransportError, match="undecodable"):
            recv_frame(right)
        left.sendall(encode_frame({}).replace(b"{}", b"[]"))
        with pytest.raises(RpcTransportError, match="expected an object"):
            recv_frame(right)
    finally:
        left.close()
        right.close()


# --------------------------------------------------------------------------- #
# typed errors
# --------------------------------------------------------------------------- #
def test_known_exception_types_reraise_as_themselves():
    payload = error_payload(UnknownQueryError("no query 7"))
    assert payload == {"type": "UnknownQueryError", "message": "no query 7"}
    with pytest.raises(UnknownQueryError, match="no query 7"):
        raise_remote_error(payload)


def test_unknown_exception_types_become_remote_errors():
    with pytest.raises(RpcRemoteError) as info:
        raise_remote_error({"type": "SomethingElse", "message": "boom"})
    assert info.value.remote_type == "SomethingElse"
    # A malformed error object degrades to a remote error, never a KeyError.
    with pytest.raises(RpcRemoteError):
        raise_remote_error({})


def test_non_repro_builtins_are_not_reraised_by_name():
    # "ValueError" is not a repro.exceptions type: it must arrive wrapped,
    # not let a remote pick arbitrary exception classes to raise here.
    with pytest.raises(RpcRemoteError):
        raise_remote_error({"type": "ValueError", "message": "x"})


# --------------------------------------------------------------------------- #
# the connection: ids and deadlines
# --------------------------------------------------------------------------- #
def echo_server(sock, transform=None):
    """Serve one connection: respond to each request (optionally mangled)."""

    def run():
        while True:
            request = recv_frame(sock)
            if request is None or request.get("method") == "stop":
                break
            response = {"id": request["id"], "ok": True, "result": request["params"]}
            if transform is not None:
                response = transform(response)
            send_frame(sock, response)
        sock.close()

    thread = threading.Thread(target=run, daemon=True)
    thread.start()
    return thread


def test_call_round_trip_and_monotonic_ids():
    left, right = socket_pair()
    echo_server(right)
    with RpcConnection(left, peer="echo") as connection:
        assert connection.call("first", {"n": 1}) == {"n": 1}
        assert connection.call("second", {"n": 2}) == {"n": 2}
        first = connection.send_request("a", {})
        second = connection.send_request("b", {})
        assert second == first + 1
        assert connection.read_response(first) == {}
        assert connection.read_response(second) == {}
        connection.send_request("stop")


def test_mismatched_response_id_is_a_protocol_violation():
    left, right = socket_pair()
    echo_server(right, transform=lambda response: {**response, "id": 999})
    with RpcConnection(left, peer="bad-echo") as connection:
        with pytest.raises(RpcTransportError, match="does not match"):
            connection.call("anything")


def test_deadline_elapses_as_timeout():
    left, right = socket_pair()
    try:
        with RpcConnection(left, peer="silent") as connection:
            with pytest.raises(RpcTimeoutError):
                connection.call("never-answered", timeout_ms=60.0)
    finally:
        right.close()


def test_closed_connection_refuses_calls():
    left, right = socket_pair()
    right.close()
    connection = RpcConnection(left, peer="gone")
    connection.close()
    assert connection.closed
    with pytest.raises(RpcTransportError, match="closed"):
        connection.call("anything")
    connection.close()  # idempotent
