"""The serving tier: MonitoringServer + RemoteMonitoringClient round trips."""

from __future__ import annotations

import threading
from typing import Iterator, Tuple

import pytest

from repro.exceptions import (
    ConfigurationError,
    DuplicateQueryError,
    NetworkError,
    UnknownQueryError,
)
from repro.net.client import RemoteMonitoringClient
from repro.net.server import MonitoringServer
from repro.query.query import ContinuousQuery
from repro.service import EngineSpec, MonitoringService, WindowSpec
from tests.conftest import StreamCase


@pytest.fixture
def served() -> Iterator[Tuple[RemoteMonitoringClient, MonitoringService]]:
    """A served ITA service and a connected client; everything torn down."""
    service = MonitoringService(
        EngineSpec(kind="ita", window=WindowSpec.count(32))
    )
    server = MonitoringServer(service, port=0)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    host, port = server.address
    client = RemoteMonitoringClient(host, port, timeout_ms=10_000.0)
    try:
        yield client, service
    finally:
        client.close()
        server.shutdown()
        thread.join(timeout=10.0)
        assert not thread.is_alive()
        assert service.closed  # the drain path closes the service


def test_remote_facade_matches_local_service(served):
    client, _ = served
    local = MonitoringService(EngineSpec(kind="ita", window=WindowSpec.count(32)))
    remote_handle = client.subscribe("market news", k=2)
    local_handle = local.subscribe("market news", k=2)
    assert remote_handle.active
    texts = [
        f"market news bulletin {i}: stocks, trade and markets" for i in range(6)
    ] + ["weather report: sunny", "sports results round-up"]
    for text in texts:
        remote_changes = client.ingest(text)
        local_changes = local.ingest(text)
        assert remote_changes == local_changes
    assert remote_handle.result() == local_handle.result()
    assert client.results() == local.results()
    remote_alerts = list(remote_handle.changes())
    local_alerts = list(local_handle.changes())
    assert [a.change for a in remote_alerts] == [a.change for a in local_alerts]
    assert [
        a.document.doc_id if a.document else None for a in remote_alerts
    ] == [a.document.doc_id if a.document else None for a in local_alerts]
    assert remote_handle.pending_changes == 0
    local.close()


def test_prebuilt_queries_and_streamed_documents(served):
    client, _ = served
    case = StreamCase(21, num_queries=3, num_documents=30)
    handles = [client.subscribe(query) for query in case.queries]
    assert [handle.query_id for handle in handles] == [
        query.query_id for query in case.queries
    ]
    client.ingest(case.documents)

    from repro.core.engine import ITAEngine

    reference = ITAEngine(WindowSpec.count(32).build(), track_changes=True)
    for query in case.queries:
        reference.register_query(query)
    for document in case.documents:
        reference.process(document)
    for query in case.queries:
        assert handles[0].result() == reference.current_result(handles[0].query_id)
        assert client.result(query.query_id) == reference.current_result(
            query.query_id
        )


def test_typed_errors_cross_the_wire(served):
    client, _ = served
    with pytest.raises(UnknownQueryError):
        client.result(404)
    with pytest.raises(UnknownQueryError):
        client.unsubscribe(404)
    client.ingest("tick", at=10.0)
    with pytest.raises(ConfigurationError):
        client.ingest("tock", at=1.0)  # behind the service clock
    with pytest.raises(NetworkError, match="unknown server method"):
        client._call("no_such_method")
    # The connection survives typed errors: normal calls keep working.
    assert client.ping()["engine"] == "ita"


def test_unsubscribe_and_handle_reattach(served):
    client, _ = served
    handle = client.subscribe("alpha beta", k=1)
    query_id = handle.query_id
    assert client.query_ids() == [query_id]
    reattached = client.handle(query_id)
    assert reattached is handle
    handle.unsubscribe()
    assert not handle.active
    handle.unsubscribe()  # idempotent
    assert client.query_ids() == []
    with pytest.raises(UnknownQueryError):
        handle.result()
    with pytest.raises(UnknownQueryError):
        client.handle(query_id)


def test_advance_time_and_clock(served):
    client, _ = served
    handle = client.subscribe("fleeting story", k=2)
    client.ingest("a fleeting story", at=5.0)
    assert client.ping()["clock"] == 5.0
    changes = client.advance_time(50.0)
    assert changes == []  # count-based window: nothing expires
    assert handle.result()  # still there
    assert client.ping()["clock"] == 50.0  # the clock advanced


def test_snapshot_metrics_and_stats(served):
    client, service = served
    client.subscribe("snapshot test", k=1)
    client.ingest("a snapshot test document")
    snapshot = client.snapshot()
    assert snapshot == service.snapshot()
    restored = MonitoringService.restore(snapshot)
    assert restored.results() == service.results()
    restored.close()
    stats = client.stats()
    assert stats["engine"] == "ita"
    assert stats["window_size"] == 1
    assert "worker_pids" not in stats  # single engine: no workers
    assert isinstance(client.metrics(), dict)
    assert isinstance(client.metrics_prometheus(), str)


def test_two_clients_share_the_server(served):
    client, _ = served
    host, port = client._connection.peer.rsplit(":", 1)
    with RemoteMonitoringClient(host, int(port)) as second:
        handle = client.subscribe("shared topic", k=1)
        second.ingest("a shared topic document")
        assert client.result(handle.query_id) == second.result(handle.query_id)
        # The second client can attach to the first one's subscription.
        other = second.handle(handle.query_id)
        assert other.result() == handle.result()


def test_shutdown_rpc_stops_the_server():
    service = MonitoringService(EngineSpec(kind="ita", window=WindowSpec.count(8)))
    server = MonitoringServer(service, port=0)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    host, port = server.address
    with RemoteMonitoringClient(host, port) as client:
        client.subscribe("graceful stop", k=1)
        client.ingest("one last document before the graceful stop")
        client.shutdown_server()
    thread.join(timeout=10.0)
    assert not thread.is_alive()
    assert service.closed
    # The drained service still serves reads, per the facade contract.
    assert list(service.results())


def test_invalid_server_construction():
    service = MonitoringService(EngineSpec(kind="ita", window=WindowSpec.count(8)))
    with pytest.raises(ConfigurationError, match="max_pending"):
        MonitoringServer(service, max_pending=0)
    service.close()


def test_remote_max_pending_bounds_the_server_buffer(served):
    client, service = served
    handle = client.subscribe("bounded buffer news", k=5, max_pending=2)
    for i in range(6):
        client.ingest(f"bounded buffer news item {i}")
    # The server kept only the newest two alerts for this handle.
    assert service.handle(handle.query_id).pending_changes <= 2
    assert len(list(handle.changes())) <= 2


def test_subscribe_with_query_record_conflict(served):
    client, _ = served
    query = ContinuousQuery(query_id=7, weights={0: 1.0}, k=1)
    client.subscribe(query)
    with pytest.raises(DuplicateQueryError):
        client.subscribe(ContinuousQuery(query_id=7, weights={1: 1.0}, k=1))
