"""Unit tests of the segmented write-ahead log."""

import json

import pytest

from repro.durability.wal import (
    WriteAheadLog,
    decode_record,
    encode_record,
    read_wal_records,
    segment_paths,
)
from repro.exceptions import DurabilityError, WalCorruptionError


def records_in(directory, after_lsn=-1):
    return list(read_wal_records(directory, after_lsn=after_lsn))


class TestRecordEnvelope:
    def test_encode_decode_round_trip(self):
        record = {"lsn": 3, "op": "ingest", "docs": [{"doc_id": 1}]}
        assert decode_record(encode_record(record)) == record

    def test_lsn_required(self):
        with pytest.raises(DurabilityError):
            encode_record({"op": "ingest"})

    def test_crc_detects_tampering(self):
        line = encode_record({"lsn": 1, "op": "ingest", "docs": []})
        tampered = line.replace('"ingest"', '"digest"')
        with pytest.raises(WalCorruptionError):
            decode_record(tampered)

    def test_not_json_rejected(self):
        with pytest.raises(WalCorruptionError):
            decode_record("{half a rec")

    def test_missing_envelope_rejected(self):
        with pytest.raises(WalCorruptionError):
            decode_record(json.dumps({"op": "ingest"}))


class TestWriteAheadLog:
    def test_append_read_round_trip(self, tmp_path):
        wal = WriteAheadLog(tmp_path, fsync="never")
        for lsn in range(1, 6):
            wal.append({"lsn": lsn, "op": "ingest", "docs": []})
        wal.close()
        assert [r["lsn"] for r in records_in(tmp_path)] == [1, 2, 3, 4, 5]
        assert [r["lsn"] for r in records_in(tmp_path, after_lsn=3)] == [4, 5]

    def test_rotation_bounds_segment_size(self, tmp_path):
        wal = WriteAheadLog(tmp_path, fsync="never", segment_max_records=2)
        for lsn in range(1, 8):
            wal.append({"lsn": lsn, "op": "x"})
        wal.close()
        segments = segment_paths(tmp_path)
        assert len(segments) == 4  # 2+2+2+1
        assert [r["lsn"] for r in records_in(tmp_path)] == list(range(1, 8))

    def test_explicit_rotate_returns_immutable_segments(self, tmp_path):
        wal = WriteAheadLog(tmp_path, fsync="never")
        wal.append({"lsn": 1, "op": "x"})
        old = wal.rotate()
        assert len(old) == 1
        wal.append({"lsn": 2, "op": "x"})
        wal.close()
        # Deleting the rotated segment drops only the records it held.
        old[0].unlink()
        assert [r["lsn"] for r in records_in(tmp_path)] == [2]

    def test_reopen_starts_fresh_segment(self, tmp_path):
        first = WriteAheadLog(tmp_path, fsync="never")
        first.append({"lsn": 1, "op": "x"})
        first.close()
        second = WriteAheadLog(tmp_path, fsync="never")
        second.append({"lsn": 2, "op": "x"})
        second.close()
        assert len(segment_paths(tmp_path)) == 2
        assert [r["lsn"] for r in records_in(tmp_path)] == [1, 2]

    def test_append_after_close_rejected(self, tmp_path):
        wal = WriteAheadLog(tmp_path, fsync="never")
        wal.close()
        with pytest.raises(DurabilityError):
            wal.append({"lsn": 1, "op": "x"})

    @pytest.mark.parametrize("fsync", ["always", "interval", "never"])
    def test_every_fsync_mode_persists(self, tmp_path, fsync):
        wal = WriteAheadLog(tmp_path / fsync, fsync=fsync, fsync_interval=2)
        for lsn in range(1, 5):
            wal.append({"lsn": lsn, "op": "x"})
        wal.close()
        assert [r["lsn"] for r in records_in(tmp_path / fsync)] == [1, 2, 3, 4]


class TestTornTail:
    def fill(self, tmp_path, count=4):
        wal = WriteAheadLog(tmp_path, fsync="never")
        for lsn in range(1, count + 1):
            wal.append({"lsn": lsn, "op": "x"})
        wal.close()
        return segment_paths(tmp_path)[-1]

    def test_truncated_final_record_dropped(self, tmp_path):
        segment = self.fill(tmp_path)
        data = segment.read_bytes()
        segment.write_bytes(data[: len(data) - 7])  # tear the last record
        assert [r["lsn"] for r in records_in(tmp_path)] == [1, 2, 3]

    def test_garbage_tail_line_dropped(self, tmp_path):
        segment = self.fill(tmp_path)
        with open(segment, "a", encoding="utf-8") as handle:
            handle.write('{"lsn": 5, "op"')  # crash mid-append, no newline
        assert [r["lsn"] for r in records_in(tmp_path)] == [1, 2, 3, 4]

    def test_corruption_before_tail_raises(self, tmp_path):
        segment = self.fill(tmp_path)
        lines = segment.read_text().splitlines()
        lines[1] = lines[1][:-4] + 'xxx"'
        segment.write_text("\n".join(lines) + "\n")
        with pytest.raises(WalCorruptionError):
            records_in(tmp_path)

    def test_torn_tail_of_nonfinal_segment_raises(self, tmp_path):
        wal = WriteAheadLog(tmp_path, fsync="never", segment_max_records=2)
        for lsn in range(1, 5):
            wal.append({"lsn": lsn, "op": "x"})
        wal.close()
        first, second = segment_paths(tmp_path)
        data = first.read_bytes()
        first.write_bytes(data[: len(data) - 5])
        with pytest.raises(WalCorruptionError):
            records_in(tmp_path)

    def test_empty_trailing_segment_tolerated(self, tmp_path):
        self.fill(tmp_path)
        (tmp_path / "wal-0000000009.jsonl").write_text("")
        assert [r["lsn"] for r in records_in(tmp_path)] == [1, 2, 3, 4]
