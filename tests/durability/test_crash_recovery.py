"""Kill-point crash recovery against the conformance-fuzz tapes.

A seeded operation tape (the same generator the differential conformance
suite uses) is replayed against a *durable* service, and after every
logged record the durability directory is captured exactly as a crash at
that record boundary would leave it.  Each capture is then recovered and
must reproduce, **bit-identically**, the uninterrupted run's service
snapshot at that boundary -- for the single ITA engine, the sharded
cluster (per-shard logs merged by lsn), and the asynchronous ingest lane
(log-before-ack).  The tapes draw continuous weights, so score ties are
absent and bit-identity is the contract (the tie-only latitude of
restore is documented in ``tests/cluster/test_midstream_restore.py``).

On top of the snapshot oracle:

* the durable run's change streams, digests and alert streams must equal
  a plain (memory-only) service's run of the same tape -- write-ahead
  logging must be semantically invisible;
* recovered services must *continue* the tape identically: per-op change
  content, per-query alert streams and final results match the
  uninterrupted run's tail (sampled kill points, to bound runtime);
* with the initial (empty) checkpoint, recovery replays the whole history
  through the normal event path, so even the operation counters match the
  uninterrupted run exactly.
"""

import asyncio
import shutil
from typing import Any, Dict, List, Tuple

import pytest

from repro.durability import DurabilityPolicy
from repro.query.query import ContinuousQuery
from repro.service import (
    AsyncMonitoringService,
    MonitoringService,
    WindowSpec,
    spec_from_name,
)
from tests.conformance.test_differential_fuzz import (
    digest_results,
    generate_tape,
    normalize_alert,
    normalize_change,
)

WINDOW_SIZE = 16
FAST_NO_CHECKPOINT = DurabilityPolicy(
    fsync="never", checkpoint_every=0, segment_max_records=16
)


def durable_spec(engine_name: str, policy: DurabilityPolicy, storage: str = "bisect"):
    spec = spec_from_name(engine_name, window=WindowSpec.count(WINDOW_SIZE))
    return spec.with_overrides(durability=policy, storage=storage)


def plain_spec(engine_name: str, storage: str = "bisect"):
    spec = spec_from_name(engine_name, window=WindowSpec.count(WINDOW_SIZE))
    if storage != "bisect":
        spec = spec.with_overrides(storage=storage)
    return spec


def strip_checkpoints(tape: List[Tuple]) -> List[Tuple]:
    """Replace snapshot/restore ops with observations (the durable runs
    exercise checkpointing through the durability layer instead)."""
    return [("observe",) if op[0] == "checkpoint" else op for op in tape]


class OracleRun:
    """Everything the uninterrupted durable run produced, per boundary."""

    def __init__(self) -> None:
        #: lsn -> service snapshot at that record boundary
        self.snapshots: Dict[int, Dict[str, Any]] = {}
        #: lsn -> engine counters at that boundary
        self.counters: Dict[int, Dict[str, int]] = {}
        #: lsn -> (next op index, active query ids, per-query alert counts)
        self.boundaries: Dict[int, Tuple[int, Tuple[int, ...], Dict[int, int]]] = {}
        #: per ingest op: normalized change list
        self.changes: List[List[Tuple]] = []
        #: per observe op: results digest
        self.digests: List[Dict[int, Tuple]] = []
        #: per query: normalized alert stream
        self.alerts: Dict[int, List[Tuple]] = {}
        #: results digest at the end of the whole tape
        self.final_digest: Dict[int, Tuple] = {}


def run_durable_sync(
    tape: List[Tuple], spec, root, captures, capture_dirs: Dict[int, Any]
) -> OracleRun:
    """Replay ``tape`` against a durable service, capturing the directory
    at every record boundary (a crash can only land on one)."""
    oracle = OracleRun()
    service = MonitoringService.open(root, spec)
    handles: Dict[int, Any] = {}

    def drain_alerts() -> None:
        for query_id, handle in handles.items():
            oracle.alerts.setdefault(query_id, []).extend(
                normalize_alert(alert) for alert in handle.changes()
            )

    def capture(index: int) -> None:
        lsn = service.durability.last_lsn
        oracle.snapshots[lsn] = service.snapshot()
        oracle.counters[lsn] = service.counters.as_dict()
        oracle.boundaries[lsn] = (
            index + 1,
            tuple(sorted(handles)),
            {qid: len(stream) for qid, stream in oracle.alerts.items()},
        )
        target = captures / str(lsn)
        if target.exists():
            shutil.rmtree(target)
        shutil.copytree(root, target)
        capture_dirs[lsn] = target

    for index, op in enumerate(tape):
        kind = op[0]
        if kind == "subscribe":
            _, query_id, weights, k = op
            handles[query_id] = service.subscribe(
                ContinuousQuery(query_id=query_id, weights=weights, k=k)
            )
        elif kind == "unsubscribe":
            _, query_id = op
            drain_alerts()
            handles.pop(query_id).unsubscribe()
        elif kind == "ingest":
            _, documents = op
            changes = service.ingest(documents)
            oracle.changes.append([normalize_change(change) for change in changes])
        elif kind == "observe":
            drain_alerts()
            oracle.digests.append(digest_results(service.results()))
        elif kind == "checkpoint":
            drain_alerts()
            service.checkpoint()
        else:  # pragma: no cover - tape generator bug
            raise AssertionError(f"unknown op {kind!r}")
        drain_alerts()
        capture(index)
    oracle.final_digest = digest_results(service.results())
    service.close()
    return oracle


def run_plain_sync(tape: List[Tuple], spec) -> Tuple[List, List, Dict]:
    """The memory-only reference run: changes, digests, alert streams."""
    service = MonitoringService(spec)
    handles: Dict[int, Any] = {}
    changes_log: List[List[Tuple]] = []
    digests: List[Dict[int, Tuple]] = []
    alerts: Dict[int, List[Tuple]] = {}

    def drain_alerts() -> None:
        for query_id, handle in handles.items():
            alerts.setdefault(query_id, []).extend(
                normalize_alert(alert) for alert in handle.changes()
            )

    for op in tape:
        kind = op[0]
        if kind == "subscribe":
            _, query_id, weights, k = op
            handles[query_id] = service.subscribe(
                ContinuousQuery(query_id=query_id, weights=weights, k=k)
            )
        elif kind == "unsubscribe":
            _, query_id = op
            drain_alerts()
            handles.pop(query_id).unsubscribe()
        elif kind == "ingest":
            _, documents = op
            changes = service.ingest(documents)
            changes_log.append([normalize_change(change) for change in changes])
        elif kind in ("observe", "checkpoint"):
            drain_alerts()
            digests.append(digest_results(service.results()))
        drain_alerts()
    service.close()
    return changes_log, digests, alerts


def continue_tape(
    service, tape: List[Tuple], start_index: int, active: Tuple[int, ...]
) -> Tuple[List, Dict, Dict]:
    """Replay the tape's tail on a recovered service."""
    handles = {query_id: service.handle(query_id) for query_id in active}
    changes_log: List[List[Tuple]] = []
    alerts: Dict[int, List[Tuple]] = {}
    final_digest: Dict[int, Tuple] = {}

    def drain_alerts() -> None:
        for query_id, handle in handles.items():
            alerts.setdefault(query_id, []).extend(
                normalize_alert(alert) for alert in handle.changes()
            )

    for op in tape[start_index:]:
        kind = op[0]
        if kind == "subscribe":
            _, query_id, weights, k = op
            handles[query_id] = service.subscribe(
                ContinuousQuery(query_id=query_id, weights=weights, k=k)
            )
        elif kind == "unsubscribe":
            _, query_id = op
            drain_alerts()
            handles.pop(query_id).unsubscribe()
        elif kind == "ingest":
            _, documents = op
            changes = service.ingest(documents)
            changes_log.append([normalize_change(change) for change in changes])
        elif kind == "checkpoint":
            drain_alerts()
            service.checkpoint()
        drain_alerts()
    final_digest = digest_results(service.results())
    return changes_log, alerts, final_digest


# --------------------------------------------------------------------------- #
# the kill-point suites
# --------------------------------------------------------------------------- #
@pytest.mark.parametrize(
    "engine_name,storage",
    [
        ("ita", "bisect"),
        ("ita", "columnar"),
        ("sharded-ita-2", "bisect"),
        ("sharded-ita-2", "columnar"),
    ],
)
def test_every_kill_point_recovers_bit_identically(engine_name, storage, tmp_path):
    """Truncating the log at *every* record boundary and recovering must
    reproduce the uninterrupted snapshot, counters included (the initial
    checkpoint is empty, so recovery replays the whole history).  Both
    storage backends are covered: WAL replay rides the normal event path,
    so the columnar engine must recover bit-identically too."""
    tape = strip_checkpoints(generate_tape(4111, tie_heavy=False, num_ops=64))
    root = tmp_path / "live"
    captures = tmp_path / "killpoints"
    captures.mkdir()
    capture_dirs: Dict[int, Any] = {}
    oracle = run_durable_sync(
        tape,
        durable_spec(engine_name, FAST_NO_CHECKPOINT, storage),
        root,
        captures,
        capture_dirs,
    )

    # Logging must be semantically invisible: the durable run equals the
    # plain run op for op.
    plain_changes, plain_digests, plain_alerts = run_plain_sync(
        tape, plain_spec(engine_name, storage)
    )
    assert oracle.changes == plain_changes
    assert oracle.digests == plain_digests
    assert oracle.alerts == plain_alerts

    assert len(capture_dirs) >= 30, "tape produced too few record boundaries"
    for lsn, directory in sorted(capture_dirs.items()):
        recovered = MonitoringService.open(directory)
        assert recovered.last_recovery.last_lsn == lsn
        assert recovered.snapshot() == oracle.snapshots[lsn], (
            f"snapshot diverged at kill point lsn={lsn} ({engine_name})"
        )
        assert recovered.counters.as_dict() == oracle.counters[lsn], (
            f"counters diverged at kill point lsn={lsn} ({engine_name})"
        )
        recovered.close()


@pytest.mark.parametrize(
    "engine_name,storage",
    [
        ("ita", "bisect"),
        ("ita", "columnar"),
        ("sharded-ita-3", "bisect"),
        ("sharded-ita-3", "columnar"),
    ],
)
def test_recovered_services_continue_the_tape_identically(
    engine_name, storage, tmp_path
):
    """From sampled kill points the recovered service must finish the tape
    with the exact change streams, alert streams and final results of the
    uninterrupted run -- including across automatic checkpoints."""
    tape = strip_checkpoints(generate_tape(5227, tie_heavy=False, num_ops=56))
    policy = DurabilityPolicy(fsync="never", checkpoint_every=9, segment_max_records=8)
    root = tmp_path / "live"
    captures = tmp_path / "killpoints"
    captures.mkdir()
    capture_dirs: Dict[int, Any] = {}
    oracle = run_durable_sync(
        tape, durable_spec(engine_name, policy, storage), root, captures, capture_dirs
    )

    lsns = sorted(capture_dirs)
    sampled = lsns[:: max(1, len(lsns) // 7)]
    for lsn in sampled:
        recovered = MonitoringService.open(capture_dirs[lsn])
        assert recovered.snapshot() == oracle.snapshots[lsn], (
            f"snapshot diverged at kill point lsn={lsn} ({engine_name})"
        )
        next_index, active, alert_counts = oracle.boundaries[lsn]
        changes_before = sum(
            1 for op in tape[:next_index] if op[0] == "ingest"
        )
        tail_changes, tail_alerts, final_digest = continue_tape(
            recovered, tape, next_index, active
        )
        assert tail_changes == oracle.changes[changes_before:], (
            f"continuation change stream diverged from lsn={lsn} ({engine_name})"
        )
        for query_id, stream in tail_alerts.items():
            expected = oracle.alerts.get(query_id, [])[alert_counts.get(query_id, 0) :]
            assert stream == expected, (
                f"continuation alerts diverged for query {query_id} "
                f"from lsn={lsn} ({engine_name})"
            )
        assert final_digest == oracle.final_digest, (
            f"final results diverged from lsn={lsn} ({engine_name})"
        )
        recovered.close()


@pytest.mark.parametrize("workers", [1, 3])
def test_async_ingest_lane_logs_before_ack(workers, tmp_path):
    """Crashing the asynchronous ingest lane at any record boundary must
    recover to the uninterrupted run's state: every batch is logged before
    it enters a shard lane."""
    tape = strip_checkpoints(generate_tape(6173, tie_heavy=False, num_ops=44))
    policy = DurabilityPolicy(fsync="never", checkpoint_every=12, segment_max_records=8)
    spec = durable_spec("sharded-ita-2", policy)
    root = tmp_path / "live"
    captures = tmp_path / "killpoints"
    captures.mkdir()
    capture_dirs: Dict[int, Any] = {}
    snapshots: Dict[int, Dict[str, Any]] = {}

    async def replay() -> None:
        service = MonitoringService.open(root, spec)
        async with service.serve(max_workers=workers, queue_depth=2, batch_size=5) as serving:
            for index, op in enumerate(tape):
                kind = op[0]
                if kind == "subscribe":
                    _, query_id, weights, k = op
                    await serving.subscribe(
                        ContinuousQuery(query_id=query_id, weights=weights, k=k)
                    )
                elif kind == "unsubscribe":
                    _, query_id = op
                    await serving.unsubscribe(query_id)
                elif kind == "ingest":
                    _, documents = op
                    await serving.ingest(documents)
                elif kind == "checkpoint":
                    await serving.checkpoint()
                lsn = serving.durability.last_lsn
                snapshots[lsn] = await serving.snapshot()
                target = captures / str(lsn)
                if target.exists():
                    shutil.rmtree(target)
                shutil.copytree(root, target)
                capture_dirs[lsn] = target
        service.close()

    asyncio.run(replay())

    assert len(capture_dirs) >= 20
    for lsn, directory in sorted(capture_dirs.items()):
        recovered = MonitoringService.open(directory)
        assert recovered.snapshot() == snapshots[lsn], (
            f"async kill point lsn={lsn} (workers={workers}) diverged"
        )
        recovered.close()


# --------------------------------------------------------------------------- #
# hibernation kill points (the query-scale layer's WAL records)
# --------------------------------------------------------------------------- #
@pytest.mark.parametrize(
    "engine_name,storage",
    [("ita", "bisect"), ("ita", "columnar"), ("sharded-ita-2", "bisect")],
)
def test_hibernation_kill_points_recover_bit_identically(
    engine_name, storage, tmp_path, monkeypatch
):
    """Crashing at *every* WAL record boundary of a hibernating service --
    including the boundaries between a single op's ``wake``, main and
    ``hibernate`` records -- must recover deterministically.

    With hibernation one op can log several records ([wakes][main op]
    [hibernates]), so the per-op captures of the suites above no longer
    visit every boundary; here the directory is captured after every
    individual append instead.  Two oracle regimes:

    * a cut at or after the op's **main** record: replaying the main
      record re-derives the op's hibernation decisions through the normal
      event path (explicit ``hibernate`` records are idempotent), so the
      recovered snapshot and counters must equal the uninterrupted run's
      state at that op's end, bit for bit;
    * a cut inside the **pre-op wake sequence** (the main record never
      became durable, so the client never got an ack): the recovered
      service, after the op is re-submitted and the tape finished, must
      reproduce the uninterrupted run's remaining change streams,
      observation digests, final results and final snapshot exactly --
      the already-durable wakes are absorbed by the retry.
    """
    from repro.durability.log import DurabilityLog
    from repro.queryscale import QueryScaleOptions
    from tests.queryscale.test_dedup_properties import generate_dedup_tape

    tape = generate_dedup_tape(8423, num_ops=56, include_checkpoints=False)
    spec = durable_spec(engine_name, FAST_NO_CHECKPOINT, storage).with_overrides(
        queryscale=QueryScaleOptions(dedup=True, hibernate_after=4)
    )
    root = tmp_path / "live"
    captures = tmp_path / "killpoints"
    captures.mkdir()

    #: lsn -> (capture dir, record op, tape-op index, active ids at op start)
    record_cuts: Dict[int, Tuple[Any, str, int, Tuple[int, ...]]] = {}
    current = {"index": -1, "active": ()}
    original_append = DurabilityLog._append

    def capturing_append(self, payload, shard=None):
        lsn = original_append(self, payload, shard)
        target = captures / str(lsn)
        shutil.copytree(root, target)
        record_cuts[lsn] = (target, payload["op"], current["index"], current["active"])
        return lsn

    op_end_snapshots: Dict[int, Dict[str, Any]] = {}
    op_end_counters: Dict[int, Dict[str, int]] = {}
    op_end_lsns: Dict[int, int] = {}
    oracle_changes: List[List[Tuple]] = []
    oracle_digests: List[Dict[int, Tuple]] = []

    def run_ops(service, handles, tape_slice, start_index, changes, digests):
        """Replay tape ops the same way live and continuation runs must."""
        for offset, op in enumerate(tape_slice):
            current["index"] = start_index + offset
            current["active"] = tuple(sorted(handles))
            kind = op[0]
            if kind == "subscribe":
                _, query_id, weights, k = op
                handles[query_id] = service.subscribe(
                    ContinuousQuery(query_id=query_id, weights=weights, k=k)
                )
            elif kind == "unsubscribe":
                _, query_id = op
                handles.pop(query_id).unsubscribe()
            elif kind == "ingest":
                _, documents = op
                batch_changes = service.ingest(documents)
                changes.append(
                    [normalize_change(change) for change in batch_changes]
                )
            elif kind == "observe":
                # Waking every hibernated query is part of the op: the
                # continuation runs must retrace it or later change
                # streams diverge.
                digests.append(digest_results(service.results()))
            else:  # pragma: no cover - tape generator bug
                raise AssertionError(f"unknown op {kind!r}")
            yield start_index + offset

    with monkeypatch.context() as patched:
        patched.setattr(DurabilityLog, "_append", capturing_append)
        service = MonitoringService.open(root, spec)
        handles: Dict[int, Any] = {}
        for index in run_ops(service, handles, tape, 0, oracle_changes, oracle_digests):
            op_end_snapshots[index] = service.snapshot()
            op_end_counters[index] = service.counters.as_dict()
            op_end_lsns[index] = service.durability.last_lsn
        final_digest = digest_results(service.results())
        final_snapshot = service.snapshot()
        service.close()

    kinds = {op for _, op, _, _ in record_cuts.values()}
    assert "hibernate" in kinds and "wake" in kinds, (
        "the tape must actually produce hibernate and wake records"
    )
    wake_cuts = [lsn for lsn, (_, op, _, _) in record_cuts.items() if op == "wake"]
    assert len(wake_cuts) >= 3, "too few wake-record kill points"

    for lsn, (directory, record_op, index, active) in sorted(record_cuts.items()):
        recovered = MonitoringService.open(directory)
        assert recovered.last_recovery.last_lsn == lsn
        recovered.queryscale.check_invariants()
        if record_op == "wake" and lsn < op_end_lsns[index]:
            # Pre-op cut: re-submit the in-flight op and finish the tape.
            tail_changes: List[List[Tuple]] = []
            tail_digests: List[Dict[int, Tuple]] = []
            tail_handles = {
                query_id: recovered.handle(query_id) for query_id in active
            }
            for _ in run_ops(
                recovered, tail_handles, tape[index:], index, tail_changes, tail_digests
            ):
                pass
            ingests_before = sum(1 for op in tape[:index] if op[0] == "ingest")
            observes_before = sum(1 for op in tape[:index] if op[0] == "observe")
            assert tail_changes == oracle_changes[ingests_before:], (
                f"retry change stream diverged from lsn={lsn} ({engine_name})"
            )
            assert tail_digests == oracle_digests[observes_before:], (
                f"retry digests diverged from lsn={lsn} ({engine_name})"
            )
            assert digest_results(recovered.results()) == final_digest
            assert recovered.snapshot() == final_snapshot, (
                f"final snapshot diverged after retry from lsn={lsn} ({engine_name})"
            )
        else:
            # The main record is durable: recovery replays it and
            # re-derives the op's wake/hibernate transitions in full.
            assert recovered.snapshot() == op_end_snapshots[index], (
                f"snapshot diverged at kill point lsn={lsn} "
                f"({record_op!r} record, {engine_name})"
            )
            assert recovered.counters.as_dict() == op_end_counters[index], (
                f"counters diverged at kill point lsn={lsn} "
                f"({record_op!r} record, {engine_name})"
            )
        recovered.close()
