"""MonitoringService.open: fresh durable services and clean recoveries."""

import json

import pytest

from repro.durability import DurabilityPolicy
from repro.durability.log import MANIFEST_NAME, DurabilityLog, read_manifest
from repro.durability.wal import segment_paths
from repro.exceptions import (
    ConfigurationError,
    DurabilityError,
    ServiceError,
    WindowError,
)
from repro.query.query import ContinuousQuery
from repro.service import EngineSpec, MonitoringService, WindowSpec
from tests.conftest import make_document

FAST = DurabilityPolicy(fsync="never", checkpoint_every=0)


def open_ita(path, window=WindowSpec.count(8), policy=FAST, **kwargs):
    spec = EngineSpec(kind="ita", window=window, durability=policy)
    return MonitoringService.open(path, spec, **kwargs)


class TestOpenFresh:
    def test_creates_manifest_and_initial_checkpoint(self, tmp_path):
        service = open_ita(tmp_path)
        manifest = read_manifest(tmp_path)
        assert manifest["layout"] == "single"
        assert manifest["checkpoint"]["lsn"] == 0
        assert (tmp_path / manifest["checkpoint"]["file"]).is_file()
        assert service.durability is not None
        assert service.last_recovery is None
        service.close()

    def test_policy_comes_from_the_spec(self, tmp_path):
        policy = DurabilityPolicy(fsync="never", checkpoint_every=7)
        service = open_ita(tmp_path, policy=policy)
        assert service.durability.policy == policy
        assert read_manifest(tmp_path)["policy"] == policy.to_dict()
        service.close()

    def test_explicit_policy_overrides_the_spec(self, tmp_path):
        override = DurabilityPolicy(fsync="never", checkpoint_every=99)
        service = open_ita(tmp_path, durability=override)
        assert service.durability.policy.checkpoint_every == 99
        service.close()

    def test_create_over_existing_state_rejected(self, tmp_path):
        open_ita(tmp_path).close()
        service = MonitoringService(EngineSpec())
        with pytest.raises(DurabilityError):
            DurabilityLog.create(service, tmp_path)

    def test_checkpoint_without_durability_rejected(self):
        with MonitoringService() as service:
            with pytest.raises(ServiceError):
                service.checkpoint()

    def test_invalid_policy_rejected(self, tmp_path):
        with pytest.raises(ConfigurationError):
            open_ita(tmp_path, policy=DurabilityPolicy(fsync="sometimes"))


class TestRecoveryRoundTrip:
    def test_empty_service_reopens(self, tmp_path):
        open_ita(tmp_path).close()
        service = MonitoringService.open(tmp_path)
        assert service.last_recovery.replayed_records == 0
        assert service.query_ids() == []
        service.close()

    def test_vocabulary_survives_recovery(self, tmp_path):
        service = open_ita(tmp_path)
        service.ingest(["alpha beta gamma", "beta gamma delta"])
        vocabulary = list(service.vocabulary)
        del service  # crash: no close, no checkpoint

        recovered = MonitoringService.open(tmp_path)
        assert list(recovered.vocabulary) == vocabulary
        # A query subscribed only *after* the crash must agree with the
        # pre-crash documents on term ids.
        handle = recovered.subscribe("beta gamma", k=2)
        assert sorted(entry.doc_id for entry in handle.result()) == [0, 1]
        assert all(entry.score > 0 for entry in handle.result())
        recovered.close()

    def test_unsubscribe_is_replayed(self, tmp_path):
        service = open_ita(tmp_path)
        keep = service.subscribe(ContinuousQuery(query_id=1, weights={0: 1.0}, k=1))
        drop = service.subscribe(ContinuousQuery(query_id=2, weights={1: 1.0}, k=1))
        service.ingest([make_document(0, {0: 0.4, 1: 0.6}, arrival_time=1.0)])
        drop.unsubscribe()
        del service

        recovered = MonitoringService.open(tmp_path)
        assert recovered.query_ids() == [keep.query_id]
        recovered.close()

    def test_advance_time_is_replayed(self, tmp_path):
        service = open_ita(tmp_path, window=WindowSpec.time(5.0))
        service.ingest(make_document(0, {0: 0.5}, arrival_time=1.0))
        service.advance_time(20.0)
        assert len(service.window) == 0
        del service

        recovered = MonitoringService.open(tmp_path)
        assert len(recovered.window) == 0
        assert recovered.window.clock == 20.0
        with pytest.raises(WindowError):
            recovered.ingest(make_document(1, {0: 0.5}, arrival_time=3.0))
        recovered.close()

    def test_recovered_service_keeps_logging(self, tmp_path):
        service = open_ita(tmp_path)
        service.ingest("first doc about storms")
        del service
        recovered = MonitoringService.open(tmp_path)
        recovered.ingest("second doc about storms")
        del recovered
        final = MonitoringService.open(tmp_path)
        assert len(final.window) == 2
        assert final.last_recovery.replayed_records == 2
        final.close()

    def test_backwards_batch_rejected_before_logging(self, tmp_path):
        service = open_ita(tmp_path)
        service.ingest(make_document(0, {0: 0.5}, arrival_time=10.0))
        before = service.durability.last_lsn
        with pytest.raises(WindowError):
            service.ingest(make_document(1, {0: 0.5}, arrival_time=4.0))
        assert service.durability.last_lsn == before  # nothing was logged
        del service
        MonitoringService.open(tmp_path).close()  # and recovery still works


class TestCheckpoints:
    def test_explicit_checkpoint_truncates_the_wal(self, tmp_path):
        service = open_ita(tmp_path)
        for index in range(6):
            service.ingest(f"document number {index} about markets")
        old_segments = segment_paths(tmp_path / "wal")
        assert sum(1 for s in old_segments for _ in open(s)) >= 6
        service.checkpoint()
        remaining = segment_paths(tmp_path / "wal")
        assert all(open(s).read() == "" for s in remaining)
        del service

        recovered = MonitoringService.open(tmp_path)
        assert recovered.last_recovery.replayed_records == 0
        assert len(recovered.window) == 6
        recovered.close()

    def test_automatic_checkpoint_fires_on_interval(self, tmp_path):
        policy = DurabilityPolicy(fsync="never", checkpoint_every=4)
        service = open_ita(tmp_path, policy=policy)
        for index in range(9):
            service.ingest(f"auto checkpoint document {index}")
        manifest = read_manifest(tmp_path)
        assert manifest["checkpoint"]["lsn"] >= 8
        assert service.durability.records_since_checkpoint <= 1
        del service
        recovered = MonitoringService.open(tmp_path)
        assert recovered.last_recovery.replayed_records <= 1
        assert len(recovered.window) == 8  # window of 8, 9 ingested
        recovered.close()

    def test_stale_checkpoint_with_older_manifest_recovers(self, tmp_path):
        # Crash between checkpoint-file write and manifest update: the
        # manifest still points at the previous checkpoint and the WAL
        # still holds the tail -- recovery must replay it.
        service = open_ita(tmp_path)
        service.ingest("one lonely document")
        snapshot = service.snapshot()
        (tmp_path / "checkpoint-0000000099.json").write_text(json.dumps(snapshot))
        del service
        recovered = MonitoringService.open(tmp_path)
        assert recovered.last_recovery.checkpoint_lsn == 0
        assert recovered.last_recovery.replayed_records == 1
        recovered.close()

    def test_manifest_without_checkpoint_rejected(self, tmp_path):
        service = open_ita(tmp_path)
        service.close()
        manifest = read_manifest(tmp_path)
        manifest["checkpoint"] = None
        (tmp_path / MANIFEST_NAME).write_text(json.dumps(manifest))
        with pytest.raises(DurabilityError):
            MonitoringService.open(tmp_path)


class TestSpecSerialisation:
    def test_durability_policy_round_trips_on_the_spec(self):
        spec = EngineSpec(
            kind="ita",
            window=WindowSpec.count(100),
            durability=DurabilityPolicy(fsync="always", checkpoint_every=50),
        )
        assert EngineSpec.from_dict(spec.to_dict()) == spec

    def test_specs_without_durability_stay_compatible(self):
        spec = EngineSpec()
        assert "durability" not in spec.to_dict()
        assert EngineSpec.from_dict(spec.to_dict()).durability is None


class TestRepeatedCrashes:
    def test_torn_tail_is_repaired_so_a_second_crash_recovers(self, tmp_path):
        # Crash 1 leaves a torn record; recovery drops *and truncates* it.
        # The resumed writer then appends to a fresh segment, and a second
        # crash must still recover -- an un-repaired torn line would sit
        # in a non-final segment and read as corruption.
        service = open_ita(tmp_path)
        service.ingest(["first crash survivor", "second crash survivor"])
        del service
        segment = segment_paths(tmp_path / "wal")[-1]
        data = segment.read_bytes()
        segment.write_bytes(data[: len(data) - 9])  # tear the last record

        recovered = MonitoringService.open(tmp_path)
        assert recovered.last_recovery.replayed_records == 0  # torn ingest dropped
        recovered.ingest("post recovery document")
        del recovered  # crash 2, records now span two segments

        final = MonitoringService.open(tmp_path)
        assert final.last_recovery.replayed_records == 1
        assert len(final.window) == 1
        final.close()

    def test_many_crash_recover_cycles_accumulate_state(self, tmp_path):
        open_ita(tmp_path)  # crash immediately after creation
        for index in range(4):
            service = MonitoringService.open(tmp_path)
            service.ingest(f"cycle {index} document about rates")
            del service  # crash every cycle
        final = MonitoringService.open(tmp_path)
        assert final.last_recovery.replayed_records == 4
        assert len(final.window) == 4
        final.close()


class TestAsyncDurableValidation:
    def test_backwards_async_batch_rejected_before_logging(self, tmp_path):
        import asyncio

        async def scenario():
            service = open_ita(tmp_path, window=WindowSpec.count(8))
            async with service.serve(max_workers=1, batch_size=4) as serving:
                await serving.ingest(
                    [make_document(0, {0: 0.5}, arrival_time=5.0)]
                )
                before = serving.durability.last_lsn
                with pytest.raises(WindowError):
                    # Second element regresses behind the first *within*
                    # one submission batch.
                    await serving.ingest(
                        [
                            make_document(1, {0: 0.5}, arrival_time=6.0),
                            make_document(2, {0: 0.5}, arrival_time=2.0),
                        ]
                    )
                assert serving.durability.last_lsn == before  # nothing logged
            service.close()

        asyncio.run(scenario())
        # The poisoned batch never reached the WAL, so the directory
        # stays recoverable.
        recovered = MonitoringService.open(tmp_path)
        assert len(recovered.window) == 1
        recovered.close()

    def test_batch_behind_inflight_logged_clock_rejected(self, tmp_path):
        import asyncio

        async def scenario():
            service = open_ita(tmp_path, window=WindowSpec.count(8))
            async with service.serve(max_workers=1, batch_size=2) as serving:
                # Batch 1 is logged (and may still sit in the lane); a
                # second batch behind the *logged* clock must be rejected
                # even if the engine window has not applied batch 1 yet.
                await serving.ingest(
                    [
                        make_document(0, {0: 0.5}, arrival_time=5.0),
                        make_document(1, {0: 0.5}, arrival_time=7.0),
                    ]
                )
                with pytest.raises(WindowError):
                    await serving.ingest(
                        [make_document(2, {0: 0.5}, arrival_time=6.0)]
                    )
            service.close()

        asyncio.run(scenario())
        recovered = MonitoringService.open(tmp_path)
        assert len(recovered.window) == 2
        recovered.close()
