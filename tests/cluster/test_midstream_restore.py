"""Mid-stream checkpointing: a restored run must be bit-identical to an
uninterrupted one.

The cluster (and the service façade above it) advertises snapshot/restore
as a *pause* button: checkpoint between two batches, rebuild from the
snapshot, keep streaming, and nobody downstream can tell.  These tests pin
that down at both layers -- :func:`repro.cluster.persistence.snapshot_cluster`
directly, and :meth:`repro.service.MonitoringService.snapshot` including
the asynchronous ingestion path -- comparing final top-k results, the
continuation's change stream, and the final snapshots themselves.

The workloads here draw continuous weights, so score ties are absent and
the continuation is bit-identical.  At *exactly tied* scores a restored
engine may keep a different (equally scoring) document than the
uninterrupted one: per-query incremental state is rebuilt by
re-registration, which orders tied documents canonically rather than by
their original entry history.  That pre-existing, tie-only latitude is the
same one the oracle-equivalence tests grant, and the differential fuzz
suite covers it on its tie-heavy tape.
"""

import asyncio
import random

import pytest

from repro.cluster.engine import ShardedEngine
from repro.cluster.persistence import restore_cluster, snapshot_cluster
from repro.documents.window import CountBasedWindow, WindowSpec
from repro.query.query import ContinuousQuery
from repro.service import AsyncMonitoringService, MonitoringService, spec_from_name
from tests.conftest import make_document


class TieFreeCase:
    """A seeded workload with continuous weights (score ties absent)."""

    def __init__(self, seed, num_terms=12, num_queries=8, num_documents=160):
        rng = random.Random(seed)
        self.queries = []
        for query_id in range(num_queries):
            terms = rng.sample(range(num_terms), rng.randint(1, 4))
            weights = {term: round(rng.uniform(0.05, 1.0), 6) for term in terms}
            self.queries.append(
                ContinuousQuery(query_id=query_id, weights=weights, k=rng.randint(1, 4))
            )
        self.documents = []
        clock = 0.0
        for doc_id in range(num_documents):
            clock += rng.choice([0.1, 0.5, 1.0])
            count = rng.randint(0, 5)
            terms = rng.sample(range(num_terms), count) if count else []
            weights = {term: round(rng.uniform(0.05, 1.0), 6) for term in terms}
            self.documents.append(
                make_document(doc_id, weights, arrival_time=round(clock, 6))
            )


def chunked(documents, size):
    return [documents[start : start + size] for start in range(0, len(documents), size)]


def build_cluster(num_shards, window, queries):
    cluster = ShardedEngine(
        num_shards=num_shards,
        window_factory=lambda: CountBasedWindow(window),
        placement="cost",
    )
    for query in queries:
        cluster.register_query(
            ContinuousQuery(query_id=query.query_id, weights=query.weights, k=query.k)
        )
    return cluster


@pytest.mark.parametrize("num_shards", [2, 3])
def test_cluster_restored_between_batches_matches_uninterrupted(num_shards):
    case = TieFreeCase(seed=71, num_queries=9, num_documents=180)
    window = 15
    batches = chunked(case.documents, 16)
    cut = len(batches) // 2

    uninterrupted = build_cluster(num_shards, window, case.queries)
    restored = build_cluster(num_shards, window, case.queries)

    for batch in batches[:cut]:
        uninterrupted.process_batch(batch)
        restored.process_batch(batch)

    # Pause: checkpoint the second cluster and rebuild it from scratch.
    restored = restore_cluster(snapshot_cluster(restored))
    assert restored.num_shards == num_shards
    restored.check_invariants()

    # Continue: both runs must report the identical change stream and,
    # event for event, the identical final state.
    for index, batch in enumerate(batches[cut:]):
        expected = uninterrupted.process_batch_events(batch)
        actual = restored.process_batch_events(batch)
        assert expected == actual, f"change stream diverged in batch {index} after restore"

    assert restored.current_results() == uninterrupted.current_results()
    assert restored.assignment() == uninterrupted.assignment()
    assert snapshot_cluster(restored) == snapshot_cluster(uninterrupted)
    restored.check_invariants()


def test_service_restored_between_batches_matches_uninterrupted():
    case = TieFreeCase(seed=83)
    spec = spec_from_name("sharded-ita-3", window=WindowSpec.count(12))
    batches = chunked(case.documents, 20)
    cut = 4

    def subscribed(service):
        for query in case.queries:
            service.subscribe(
                ContinuousQuery(query_id=query.query_id, weights=query.weights, k=query.k)
            )
        return service

    uninterrupted = subscribed(MonitoringService(spec))
    paused = subscribed(MonitoringService(spec))
    for batch in batches[:cut]:
        uninterrupted.ingest(batch)
        paused.ingest(batch)

    resumed = MonitoringService.restore(paused.snapshot())
    paused.close()

    for batch in batches[cut:]:
        expected = uninterrupted.ingest(batch)
        actual = resumed.ingest(batch)
        assert expected == actual, "continuation change stream diverged after restore"

    assert resumed.results() == uninterrupted.results()
    assert resumed.snapshot() == uninterrupted.snapshot()


def test_async_service_restored_between_batches_matches_sync_uninterrupted():
    """Checkpoint under the async pipeline, resume async, compare to one
    uninterrupted synchronous run -- crossing both the persistence seam
    and the execution-strategy seam at once."""
    case = TieFreeCase(seed=97)
    spec = spec_from_name("sharded-ita-3", window=WindowSpec.count(12))
    batches = chunked(case.documents, 20)
    cut = 4

    uninterrupted = MonitoringService(spec)
    for query in case.queries:
        uninterrupted.subscribe(
            ContinuousQuery(query_id=query.query_id, weights=query.weights, k=query.k)
        )
    sync_changes = [uninterrupted.ingest(batch) for batch in batches]

    async def interrupted_async_run():
        changes = []
        service = await AsyncMonitoringService(
            spec, max_workers=3, queue_depth=2, batch_size=7
        ).start()
        for query in case.queries:
            await service.subscribe(
                ContinuousQuery(query_id=query.query_id, weights=query.weights, k=query.k)
            )
        for batch in batches[:cut]:
            changes.append(await service.ingest(batch))
        snapshot = await service.snapshot()
        await service.close()
        service = await AsyncMonitoringService.restore(
            snapshot, max_workers=3, queue_depth=2, batch_size=7
        )
        for batch in batches[cut:]:
            changes.append(await service.ingest(batch))
        final = (await service.results(), await service.snapshot())
        await service.aclose()
        return changes, final

    async_changes, (async_results, async_snapshot) = asyncio.run(interrupted_async_run())
    assert async_changes == sync_changes
    assert async_results == uninterrupted.results()
    assert async_snapshot == uninterrupted.snapshot()
