"""Tests for whole-cluster snapshot and restore."""

import json

import pytest

from repro.cluster.engine import ShardedEngine
from repro.cluster.persistence import restore_cluster, snapshot_cluster
from repro.core.descent import ProbeOrder
from repro.core.engine import ITAEngine
from repro.documents.window import CountBasedWindow, TimeBasedWindow
from repro.exceptions import ConfigurationError
from repro.persistence import restore_engine, snapshot_engine
from tests.conftest import StreamCase, make_document, make_query


def populated_cluster(num_shards=3, window_size=9, seed=19):
    case = StreamCase(seed=seed, num_documents=70)
    cluster = ShardedEngine(
        num_shards=num_shards,
        window_factory=lambda: CountBasedWindow(window_size),
        placement="cost",
    )
    for query in case.queries:
        cluster.register_query(query)
    for document in case.documents:
        cluster.process(document)
    return cluster


class TestClusterSnapshotFormat:
    def test_snapshot_is_json_serialisable(self):
        snapshot = snapshot_cluster(populated_cluster())
        decoded = json.loads(json.dumps(snapshot))
        assert decoded["kind"] == "cluster"
        assert decoded["num_shards"] == 3

    def test_snapshot_reuses_the_engine_format_per_shard(self):
        cluster = populated_cluster(num_shards=2)
        snapshot = snapshot_cluster(cluster)
        assert len(snapshot["shards"]) == 2
        for shard_snapshot, shard in zip(snapshot["shards"], cluster.shards):
            assert shard_snapshot == snapshot_engine(shard)

    def test_snapshot_records_placement(self):
        cluster = populated_cluster()
        snapshot = snapshot_cluster(cluster)
        assert snapshot["placement"] == {
            str(query_id): shard for query_id, shard in cluster.assignment().items()
        }


class TestClusterRestore:
    def test_roundtrip_preserves_results_and_placement(self):
        cluster = populated_cluster()
        restored = restore_cluster(snapshot_cluster(cluster))
        assert restored.num_shards == cluster.num_shards
        assert restored.assignment() == cluster.assignment()
        assert restored.current_results() == cluster.current_results()
        restored.check_invariants()

    def test_restored_cluster_continues_streaming(self):
        cluster = populated_cluster(window_size=8)
        restored = restore_cluster(snapshot_cluster(cluster))
        for doc_id in range(500, 530):
            document = make_document(doc_id, {1: 0.4, 2: 0.6}, arrival_time=float(doc_id))
            cluster.process(document)
            restored.process(document)
        assert restored.current_results() == cluster.current_results()

    def test_time_based_cluster_roundtrip(self):
        cluster = ShardedEngine(
            num_shards=2,
            window_factory=lambda: TimeBasedWindow(span=12.0),
            placement="hash",
        )
        cluster.register_query(make_query(0, {1: 1.0}, k=2))
        cluster.register_query(make_query(1, {2: 1.0}, k=1))
        for doc_id in range(10):
            cluster.process(make_document(doc_id, {1: 0.5, 2: 0.3}, arrival_time=float(doc_id)))
        restored = restore_cluster(snapshot_cluster(cluster))
        assert isinstance(restored.window, TimeBasedWindow)
        assert restored.window.span == 12.0
        for shard in restored.shards:
            assert isinstance(shard.window, TimeBasedWindow)
        assert restored.current_results() == cluster.current_results()

    def test_shard_engine_config_survives_roundtrip(self):
        cluster = ShardedEngine(
            num_shards=2,
            window_factory=lambda: CountBasedWindow(6),
            engine_factory=lambda window: ITAEngine(
                window, enable_rollup=False, probe_order=ProbeOrder.ROUND_ROBIN
            ),
            placement="round-robin",
        )
        cluster.register_query(make_query(0, {1: 1.0}, k=1))
        snapshot = snapshot_cluster(cluster)
        assert snapshot["shards"][0]["config"]["probe_order"] == "round_robin"
        # Without an explicit factory the restore honours the recorded
        # per-shard engine configuration.
        restored = restore_cluster(snapshot)
        assert all(s.probe_order is ProbeOrder.ROUND_ROBIN for s in restored.shards)
        assert all(s.enable_rollup is False for s in restored.shards)

    def test_track_changes_survives_roundtrip(self):
        """The restored cluster must not falsely advertise change tracking."""
        quiet = ShardedEngine(
            num_shards=2,
            window_factory=lambda: CountBasedWindow(6),
            track_changes=False,
        )
        quiet.register_query(make_query(0, {1: 1.0}, k=1))
        quiet.process(make_document(0, {1: 0.5}, arrival_time=1.0))
        restored = restore_cluster(snapshot_cluster(quiet))
        assert restored.track_changes is False
        assert all(shard.track_changes is False for shard in restored.shards)
        assert restored.process(make_document(9, {1: 0.9}, arrival_time=9.0)) == []
        # ...and a tracking cluster stays a tracking cluster
        loud = restore_cluster(snapshot_cluster(populated_cluster()))
        assert loud.track_changes is True

    def test_unsupported_version_rejected(self):
        snapshot = snapshot_cluster(populated_cluster())
        snapshot["version"] = 99
        with pytest.raises(ConfigurationError):
            restore_cluster(snapshot)

    def test_engine_snapshot_rejected_by_cluster_restore(self):
        engine_snapshot = snapshot_engine(populated_cluster())
        with pytest.raises(ConfigurationError):
            restore_cluster(engine_snapshot)

    def test_cluster_snapshot_rejected_by_engine_restore(self):
        cluster_snapshot = snapshot_cluster(populated_cluster())
        with pytest.raises(ConfigurationError):
            restore_engine(cluster_snapshot)

    def test_tampered_placement_map_rejected(self):
        snapshot = snapshot_cluster(populated_cluster(num_shards=2))
        query_id = next(iter(snapshot["placement"]))
        snapshot["placement"][query_id] = 1 - snapshot["placement"][query_id]
        with pytest.raises(ConfigurationError):
            restore_cluster(snapshot)

    def test_shard_count_mismatch_rejected(self):
        snapshot = snapshot_cluster(populated_cluster(num_shards=2))
        snapshot["num_shards"] = 3
        with pytest.raises(ConfigurationError):
            restore_cluster(snapshot)

    def test_empty_cluster_roundtrip(self):
        cluster = ShardedEngine(
            num_shards=2, window_factory=lambda: CountBasedWindow(5)
        )
        cluster.register_query(make_query(0, {1: 1.0}, k=2))
        restored = restore_cluster(snapshot_cluster(cluster))
        assert restored.current_result(0) == []
        assert restored.shard_of(0) == cluster.shard_of(0)


class TestClusterCollapse:
    """A cluster satisfies the plain engine snapshot contract, so
    ``snapshot_engine`` collapses it into a single engine."""

    def test_cluster_collapses_into_a_single_engine(self):
        cluster = populated_cluster()
        single = restore_engine(snapshot_engine(cluster))
        assert isinstance(single, ITAEngine)
        assert sorted(single.query_ids()) == sorted(cluster.query_ids())
        assert single.current_results() == cluster.current_results()
