"""Sharded-cluster equivalence: merged results must be *identical* to a
single ITA engine's -- same documents, same scores, same tie-breaks.

Every query runs the full algorithm on exactly one shard over a full copy
of the window, so unlike the oracle-equivalence tests (which tolerate ties)
these compare the reported :class:`~repro.query.result.ResultEntry` lists
for exact equality, across 1, 2 and 4 shards and every placement policy.
"""

import pytest

from repro.cluster.engine import ShardedEngine
from repro.core.engine import ITAEngine
from repro.documents.window import CountBasedWindow, TimeBasedWindow
from repro.query.query import ContinuousQuery
from tests.conftest import StreamCase


def assert_identical_results(single, cluster):
    assert sorted(single.query_ids()) == sorted(cluster.query_ids())
    for query_id in single.query_ids():
        assert single.current_result(query_id) == cluster.current_result(query_id), (
            f"query {query_id}: sharded result diverged from the single engine"
        )
    assert cluster.current_results() == single.current_results()


@pytest.mark.parametrize("num_shards", [1, 2, 4])
@pytest.mark.parametrize("placement", ["round-robin", "hash", "cost"])
def test_merged_results_identical_to_single_engine(num_shards, placement):
    case = StreamCase(seed=17, num_queries=10, num_documents=150)
    window = 12
    single = ITAEngine(CountBasedWindow(window))
    cluster = ShardedEngine(
        num_shards=num_shards,
        window_factory=lambda: CountBasedWindow(window),
        placement=placement,
    )
    for query in case.queries:
        single.register_query(query)
        cluster.register_query(query)
    for position, document in enumerate(case.documents):
        single_changes = single.process(document)
        cluster_changes = cluster.process(document)
        # The merged change stream carries the same per-query content.
        assert sorted(single_changes, key=lambda c: c.query_id) == cluster_changes, (
            f"change streams diverged at event {position}"
        )
        if position % 10 == 0:
            assert_identical_results(single, cluster)
    assert_identical_results(single, cluster)
    cluster.check_invariants()


@pytest.mark.parametrize("num_shards", [2, 4])
def test_equivalence_on_synthetic_corpus_workload(num_shards):
    """The acceptance workload: a generated corpus/query stream."""
    from repro.documents.corpus import SyntheticCorpus, SyntheticCorpusConfig
    from repro.documents.stream import DocumentStream, FixedRateArrivalProcess

    corpus = SyntheticCorpus(
        SyntheticCorpusConfig(dictionary_size=300, mean_log_length=3.0, seed=23)
    )
    queries = [
        ContinuousQuery.from_term_ids(query_id, corpus.sample_query_terms(4), k=5)
        for query_id in range(12)
    ]
    single = ITAEngine(CountBasedWindow(40))
    cluster = ShardedEngine(
        num_shards=num_shards,
        window_factory=lambda: CountBasedWindow(40),
        placement="cost",
    )
    for query in queries:
        single.register_query(query)
        cluster.register_query(query)
    stream = list(DocumentStream(corpus, FixedRateArrivalProcess(rate=10.0), limit=200))
    # Exercise the batch fan-out on the cluster against per-event processing
    # on the single engine.
    single.process_many(stream)
    cluster.process_many(stream)
    assert_identical_results(single, cluster)
    cluster.check_invariants()


@pytest.mark.parametrize("num_shards", [1, 2, 4])
def test_equivalence_with_time_based_windows(num_shards):
    case = StreamCase(seed=41, num_documents=100)
    span = 15.0
    single = ITAEngine(TimeBasedWindow(span))
    cluster = ShardedEngine(
        num_shards=num_shards,
        window_factory=lambda: TimeBasedWindow(span),
        placement="hash",
    )
    for query in case.queries:
        single.register_query(query)
        cluster.register_query(query)
    for position, document in enumerate(case.documents):
        single.process(document)
        cluster.process(document)
        if position % 9 == 0:
            assert_identical_results(single, cluster)
    final_time = case.documents[-1].arrival_time + 2 * span
    single.advance_time(final_time)
    cluster.advance_time(final_time)
    assert_identical_results(single, cluster)


def test_equivalence_survives_mid_stream_registration_and_migration():
    case = StreamCase(seed=53, num_documents=120)
    single = ITAEngine(CountBasedWindow(14))
    cluster = ShardedEngine(
        num_shards=3,
        window_factory=lambda: CountBasedWindow(14),
        placement="round-robin",
    )
    half = len(case.queries) // 2
    for query in case.queries[:half]:
        single.register_query(query)
        cluster.register_query(query)
    for position, document in enumerate(case.documents):
        if position == 30:
            for query in case.queries[half:]:
                single.register_query(query)
                cluster.register_query(query)
        if position == 70:
            for query_id in cluster.query_ids():
                cluster.migrate_query(query_id, (cluster.shard_of(query_id) + 1) % 3)
        single.process(document)
        cluster.process(document)
        if position >= 30 and position % 8 == 0:
            assert_identical_results(single, cluster)
    assert_identical_results(single, cluster)
    cluster.check_invariants()
