"""Tests for the ShardedEngine's cluster behaviour.

The exact result equivalence against a single engine lives in
``tests/cluster/test_equivalence.py``; these tests cover the cluster-only
surface: routing, merging, batching, migration, counters and invariants.
"""

import pytest

from repro.cluster.engine import ShardedEngine
from repro.cluster.placement import RoundRobinPlacement
from repro.core.engine import ITAEngine
from repro.documents.window import CountBasedWindow, TimeBasedWindow
from repro.exceptions import (
    ConfigurationError,
    DuplicateQueryError,
    UnknownQueryError,
)
from tests.conftest import StreamCase, make_document, make_query


def make_cluster(num_shards=3, window_size=10, placement="round-robin", **kwargs):
    return ShardedEngine(
        num_shards=num_shards,
        window_factory=lambda: CountBasedWindow(window_size),
        placement=placement,
        **kwargs,
    )


class TestQueryManagement:
    def test_placement_partitions_queries(self):
        cluster = make_cluster(num_shards=3)
        for qid in range(7):
            cluster.register_query(make_query(qid, {1: 1.0}))
        assert cluster.shard_query_counts() == [3, 2, 2]
        assert sorted(cluster.query_ids()) == list(range(7))
        for qid in range(7):
            assert qid in cluster.shards[cluster.shard_of(qid)].query_ids()

    def test_explicit_shard_placement(self):
        cluster = make_cluster(num_shards=2)
        cluster.register_query(make_query(0, {1: 1.0}), shard=1)
        assert cluster.shard_of(0) == 1
        with pytest.raises(ConfigurationError):
            cluster.register_query(make_query(1, {1: 1.0}), shard=5)

    def test_duplicate_registration_rejected_and_state_clean(self):
        cluster = make_cluster(num_shards=2)
        cluster.register_query(make_query(0, {1: 1.0}))
        with pytest.raises(DuplicateQueryError):
            cluster.register_query(make_query(0, {2: 1.0}))
        cluster.check_invariants()

    def test_unregister_releases_everything(self):
        cluster = make_cluster(num_shards=2)
        cluster.register_query(make_query(0, {1: 1.0}))
        cluster.unregister_query(0)
        assert cluster.query_ids() == []
        assert cluster.shard_query_counts() == [0, 0]
        assert cluster.placement.query_counts() == [0, 0]
        with pytest.raises(UnknownQueryError):
            cluster.shard_of(0)
        with pytest.raises(UnknownQueryError):
            cluster.current_result(0)

    def test_mismatched_policy_size_rejected(self):
        with pytest.raises(ConfigurationError):
            ShardedEngine(num_shards=3, placement=RoundRobinPlacement(2))

    def test_failed_registration_leaves_no_phantom_state(self):
        class FlakyShard(ITAEngine):
            fail = False

            def register_query(self, query):
                if FlakyShard.fail:
                    raise RuntimeError("shard down")
                super().register_query(query)

        cluster = ShardedEngine(
            num_shards=2,
            window_factory=lambda: CountBasedWindow(5),
            engine_factory=lambda window: FlakyShard(window),
            placement="cost",
        )
        cluster.register_query(make_query(0, {1: 1.0}))
        FlakyShard.fail = True
        with pytest.raises(RuntimeError):
            cluster.register_query(make_query(1, {1: 1.0}))
        FlakyShard.fail = False
        # The failed registration must not leak registry entries or
        # placement accounting (phantom load would skew later placements).
        assert cluster.query_ids() == [0]
        assert cluster.placement.query_counts() == cluster.shard_query_counts()
        cluster.register_query(make_query(1, {1: 1.0}))
        cluster.check_invariants()

    def test_failed_migration_restores_the_source_shard(self):
        class FlakyShard(ITAEngine):
            fail = False  # set per instance to take one shard down

            def register_query(self, query):
                if self.fail:
                    raise RuntimeError("shard down")
                super().register_query(query)

        cluster = ShardedEngine(
            num_shards=2,
            window_factory=lambda: CountBasedWindow(5),
            engine_factory=lambda window: FlakyShard(window),
            placement="round-robin",
        )
        cluster.register_query(make_query(0, {1: 1.0}, k=1))
        cluster.process(make_document(0, {1: 0.8}, arrival_time=0.0))
        source = cluster.shard_of(0)
        before = cluster.current_result(0)
        # Only the migration target is down; the rollback to the source
        # must go through.
        cluster.shards[1 - source].fail = True
        with pytest.raises(RuntimeError):
            cluster.migrate_query(0, 1 - source)
        cluster.shards[1 - source].fail = False
        # The query must still live on the source shard with its result.
        assert cluster.shard_of(0) == source
        assert cluster.current_result(0) == before
        assert cluster.placement.query_counts() == cluster.shard_query_counts()
        cluster.check_invariants()


class TestProcessing:
    def test_changes_merged_across_shards_in_query_order(self):
        cluster = make_cluster(num_shards=3, window_size=5)
        for qid in range(6):
            cluster.register_query(make_query(qid, {qid % 2: 1.0}, k=1))
        changes = cluster.process(make_document(0, {0: 0.9, 1: 0.8}, arrival_time=0.0))
        assert [change.query_id for change in changes] == sorted(
            change.query_id for change in changes
        )
        assert {change.query_id for change in changes} == set(range(6))

    def test_batch_api_equals_per_event_processing(self):
        case = StreamCase(seed=7, num_documents=60)
        one_by_one = make_cluster(num_shards=2, window_size=8)
        batched = make_cluster(num_shards=2, window_size=8)
        for query in case.queries:
            one_by_one.register_query(query)
            batched.register_query(query)
        per_event_changes = []
        for document in case.documents:
            per_event_changes.extend(one_by_one.process(document))
        batch_changes = batched.process_many(case.documents)
        assert batch_changes == per_event_changes
        for query in case.queries:
            assert one_by_one.current_result(query.query_id) == batched.current_result(
                query.query_id
            )
        batched.check_invariants()

    def test_mirror_window_tracks_shard_windows(self):
        cluster = make_cluster(num_shards=2, window_size=4)
        for doc_id in range(9):
            cluster.process(make_document(doc_id, {1: 0.5}, arrival_time=float(doc_id)))
        assert len(cluster.window) == 4
        for shard in cluster.shards:
            assert len(shard.window) == 4
        cluster.check_invariants()

    def test_advance_time_fans_out(self):
        cluster = ShardedEngine(
            num_shards=2,
            window_factory=lambda: TimeBasedWindow(span=5.0),
            placement="round-robin",
        )
        cluster.register_query(make_query(0, {1: 1.0}, k=1))
        cluster.process(make_document(0, {1: 0.7}, arrival_time=0.0))
        assert cluster.current_result(0) != []
        changes = cluster.advance_time(10.0)
        assert cluster.current_result(0) == []
        assert [change.query_id for change in changes] == [0]
        assert len(cluster.window) == 0

    def test_track_changes_false_returns_no_changes(self):
        cluster = make_cluster(num_shards=2, track_changes=False)
        cluster.register_query(make_query(0, {1: 1.0}, k=1))
        changes = cluster.process(make_document(0, {1: 0.9}, arrival_time=0.0))
        assert changes == []
        assert cluster.current_result(0) != []


class TestCountersAndTimers:
    def test_counters_aggregate_across_shards(self):
        cluster = make_cluster(num_shards=3, window_size=5)
        for qid in range(6):
            cluster.register_query(make_query(qid, {1: 1.0}, k=1))
        for doc_id in range(10):
            cluster.process(make_document(doc_id, {1: 0.5}, arrival_time=float(doc_id)))
        # Every shard counts every arrival: the aggregate is shards * events.
        assert cluster.counters.arrivals == 3 * 10
        assert cluster.counters.scores_computed == sum(
            shard.counters.scores_computed for shard in cluster.shards
        )
        snapshot = cluster.counters.copy()
        cluster.counters.reset()
        assert cluster.counters.arrivals == 0
        assert all(shard.counters.arrivals == 0 for shard in cluster.shards)
        assert snapshot.arrivals == 30  # the copy is detached

    def test_dispatcher_times_each_shard(self):
        cluster = make_cluster(num_shards=2, window_size=5)
        cluster.register_query(make_query(0, {1: 1.0}, k=1))
        for doc_id in range(5):
            cluster.process(make_document(doc_id, {1: 0.5}, arrival_time=float(doc_id)))
        assert all(timer.count == 5 for timer in cluster.dispatcher.shard_timers)
        assert all(total >= 0.0 for total in cluster.dispatcher.shard_total_ms())
        cluster.dispatcher.reset_timers()
        assert cluster.dispatcher.shard_total_ms() == [0.0, 0.0]

    def test_per_shard_query_work_shrinks_with_more_shards(self):
        """The scaling claim, on deterministic counters: the busiest
        shard's score computations decrease as shards are added."""
        case = StreamCase(seed=31, num_queries=16, num_documents=100)
        busiest = {}
        for num_shards in (1, 2, 4):
            cluster = make_cluster(num_shards=num_shards, window_size=10)
            for query in case.queries:
                cluster.register_query(query)
            cluster.counters.reset()
            cluster.process_many(case.documents)
            busiest[num_shards] = max(
                shard.counters.scores_computed for shard in cluster.shards
            )
        assert busiest[1] >= busiest[2] >= busiest[4]
        assert busiest[4] < busiest[1]


class TestMigration:
    def test_migration_preserves_results(self):
        case = StreamCase(seed=13, num_documents=60)
        cluster = make_cluster(num_shards=3, window_size=9)
        for query in case.queries:
            cluster.register_query(query)
        for document in case.documents:
            cluster.process(document)
        before = {qid: cluster.current_result(qid) for qid in cluster.query_ids()}
        for qid in cluster.query_ids():
            cluster.migrate_query(qid, (cluster.shard_of(qid) + 1) % 3)
        for qid, expected in before.items():
            assert cluster.current_result(qid) == expected
        cluster.check_invariants()

    def test_migration_to_same_shard_is_noop(self):
        cluster = make_cluster(num_shards=2)
        cluster.register_query(make_query(0, {1: 1.0}))
        shard = cluster.shard_of(0)
        cluster.migrate_query(0, shard)
        assert cluster.shard_of(0) == shard

    def test_migration_to_invalid_shard_rejected(self):
        cluster = make_cluster(num_shards=2)
        cluster.register_query(make_query(0, {1: 1.0}))
        with pytest.raises(ConfigurationError):
            cluster.migrate_query(0, 2)

    def test_rebalance_with_the_live_policy_rejected(self):
        cluster = make_cluster(num_shards=2, placement="cost")
        for qid in range(4):
            cluster.register_query(make_query(qid, {1: 1.0}))
        counts_before = cluster.placement.query_counts()
        with pytest.raises(ConfigurationError):
            cluster.rebalance(cluster.placement)
        # The rejected call must not have touched the live accounting.
        assert cluster.placement.query_counts() == counts_before

    def test_rebalance_evens_out_a_skewed_cluster(self):
        cluster = make_cluster(num_shards=2)
        # Pile every query onto shard 0, then rebalance.
        for qid in range(8):
            cluster.register_query(make_query(qid, {1: 1.0, 2: 0.5}, k=2), shard=0)
        for doc_id in range(20):
            cluster.process(make_document(doc_id, {1: 0.5, 2: 0.4}, arrival_time=float(doc_id)))
        before = {qid: cluster.current_result(qid) for qid in cluster.query_ids()}
        assert cluster.shard_query_counts() == [8, 0]
        migrated = cluster.rebalance()
        assert migrated == 4
        assert cluster.shard_query_counts() == [4, 4]
        for qid, expected in before.items():
            assert cluster.current_result(qid) == expected
        cluster.check_invariants()


class TestClusterResults:
    def test_current_results_unions_all_shards(self):
        cluster = make_cluster(num_shards=3, window_size=5)
        for qid in range(5):
            cluster.register_query(make_query(qid, {1: 1.0}, k=1))
        cluster.process(make_document(0, {1: 0.9}, arrival_time=0.0))
        results = cluster.current_results()
        assert sorted(results) == list(range(5))
        assert all(result[0].doc_id == 0 for result in results.values())

    def test_top_documents_across_queries(self):
        cluster = make_cluster(num_shards=2, window_size=5)
        cluster.register_query(make_query(0, {1: 1.0}, k=2))
        cluster.register_query(make_query(1, {2: 1.0}, k=2))
        cluster.process(make_document(0, {1: 0.9}, arrival_time=0.0))
        cluster.process(make_document(1, {2: 0.7}, arrival_time=1.0))
        top = cluster.top_documents(2)
        assert [entry.doc_id for entry in top] == [0, 1]

    def test_single_shard_cluster_is_allowed(self):
        cluster = make_cluster(num_shards=1)
        cluster.register_query(make_query(0, {1: 1.0}))
        cluster.process(make_document(0, {1: 0.9}, arrival_time=0.0))
        assert cluster.current_result(0)[0].doc_id == 0

    def test_zero_shards_rejected(self):
        with pytest.raises(ConfigurationError):
            ShardedEngine(num_shards=0)
