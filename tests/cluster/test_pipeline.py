"""Unit tests of the concurrent ingestion pipelines.

Determinism (ordering, merge barrier), backpressure (bounded lanes),
failure propagation and lifecycle of
:class:`~repro.cluster.pipeline.ClusterPipeline` and
:class:`~repro.cluster.pipeline.EnginePipeline`.  End-to-end equivalence
with the synchronous path lives in ``tests/service/test_async_service.py``
and ``tests/conformance/``.
"""

import asyncio
import time

import pytest

from repro.cluster.engine import ShardedEngine
from repro.cluster.pipeline import ClusterPipeline, EnginePipeline, pipeline_for
from repro.core.engine import ITAEngine
from repro.documents.window import CountBasedWindow, TimeBasedWindow
from repro.exceptions import ConfigurationError, ServiceError
from tests.conftest import StreamCase


def make_cluster(num_shards=3, window=16, engine_factory=None):
    return ShardedEngine(
        num_shards=num_shards,
        window_factory=lambda: CountBasedWindow(window),
        engine_factory=engine_factory,
        placement="round-robin",
    )


def register_case(engine, case):
    for query in case.queries:
        engine.register_query(query)


def chunked(documents, size):
    return [documents[start : start + size] for start in range(0, len(documents), size)]


class SlowEngine(ITAEngine):
    """An ITA shard whose batch path sleeps -- makes the producer outrun it."""

    delay = 0.002

    def process_batch_events(self, documents):
        time.sleep(self.delay)
        return super().process_batch_events(documents)


class FailingEngine(ITAEngine):
    """An ITA shard that blows up on a chosen document id."""

    fail_on = None

    def process_batch_events(self, documents):
        if any(document.doc_id == self.fail_on for document in documents):
            raise RuntimeError(f"shard refused document {self.fail_on}")
        return super().process_batch_events(documents)


class TestConstruction:
    def test_cluster_pipeline_rejects_single_engines(self):
        with pytest.raises(ConfigurationError):
            ClusterPipeline(ITAEngine(CountBasedWindow(8)))

    def test_engine_pipeline_rejects_clusters(self):
        with pytest.raises(ConfigurationError):
            EnginePipeline(make_cluster())

    def test_pipeline_for_dispatches_on_engine_shape(self):
        assert isinstance(pipeline_for(make_cluster()), ClusterPipeline)
        assert isinstance(pipeline_for(ITAEngine(CountBasedWindow(8))), EnginePipeline)

    @pytest.mark.parametrize("kwargs", [
        {"queue_depth": 0},
        {"queue_depth": -1},
        {"max_workers": 0},
    ])
    def test_rejects_degenerate_shapes(self, kwargs):
        with pytest.raises(ConfigurationError):
            ClusterPipeline(make_cluster(), **kwargs)


class TestOrderingAndEquivalence:
    def test_futures_resolve_in_submission_order_with_correct_content(self):
        case = StreamCase(seed=5, num_documents=90)
        sync_cluster = make_cluster()
        async_cluster = make_cluster()
        register_case(sync_cluster, case)
        register_case(async_cluster, case)
        batches = chunked(case.documents, 7)
        expected = [sync_cluster.process_batch_events(batch) for batch in batches]

        async def run():
            completion_order = []
            async with ClusterPipeline(async_cluster, max_workers=3) as pipeline:
                futures = []
                for index, batch in enumerate(batches):
                    future = await pipeline.submit(batch)
                    future.add_done_callback(
                        lambda _f, index=index: completion_order.append(index)
                    )
                    futures.append(future)
                merged = [await future for future in futures]
            return merged, completion_order

        merged, completion_order = asyncio.run(run())
        assert merged == expected
        assert completion_order == sorted(completion_order)
        assert async_cluster.current_results() == sync_cluster.current_results()

    def test_empty_batch_resolves_immediately(self):
        async def run():
            async with ClusterPipeline(make_cluster()) as pipeline:
                future = await pipeline.submit([])
                assert await future == []
                assert pipeline.stats.batches == 0

        asyncio.run(run())

    def test_advance_time_matches_synchronous_cluster(self):
        case = StreamCase(seed=29, num_documents=60)

        def make_time_cluster():
            cluster = ShardedEngine(
                num_shards=2,
                window_factory=lambda: TimeBasedWindow(9.0),
                placement="hash",
            )
            register_case(cluster, case)
            return cluster

        sync_cluster = make_time_cluster()
        sync_cluster.process_batch(case.documents)
        final_time = case.documents[-1].arrival_time + 30.0
        expected_changes = sync_cluster.advance_time(final_time)

        async def run():
            cluster = make_time_cluster()
            async with ClusterPipeline(cluster, max_workers=2) as pipeline:
                await pipeline.submit(case.documents)
                changes = await pipeline.advance_time(final_time)
            return cluster, changes

        async_cluster, actual_changes = asyncio.run(run())
        assert actual_changes == expected_changes
        assert async_cluster.current_results() == sync_cluster.current_results()
        assert len(async_cluster.window) == len(sync_cluster.window)


class TestBackpressure:
    def test_inflight_batches_stay_bounded_by_queue_depth(self):
        case = StreamCase(seed=11, num_documents=120)
        cluster = make_cluster(
            num_shards=2, engine_factory=lambda window: SlowEngine(window)
        )
        register_case(cluster, case)
        queue_depth = 2

        async def run():
            async with ClusterPipeline(
                cluster, max_workers=2, queue_depth=queue_depth
            ) as pipeline:
                for batch in chunked(case.documents, 6):
                    await pipeline.submit(batch)
                await pipeline.drain()
                return pipeline.stats

        stats = asyncio.run(run())
        assert stats.batches == 20
        assert stats.merged_batches == 20
        # The producer runs far ahead of the sleeping shards, so without
        # the bounded lanes every batch would be in flight at once; the
        # queue bound caps it at depth + one in service + one at the
        # barrier.
        assert stats.max_inflight <= queue_depth + 2
        assert stats.max_inflight >= 2

    def test_lane_timers_accumulate_per_shard_busy_time(self):
        case = StreamCase(seed=13, num_documents=40)
        cluster = make_cluster(
            num_shards=2, engine_factory=lambda window: SlowEngine(window)
        )
        register_case(cluster, case)

        async def run():
            async with ClusterPipeline(cluster) as pipeline:
                await pipeline.submit(case.documents)
                await pipeline.drain()
                return pipeline.stats

        stats = asyncio.run(run())
        assert len(stats.shard_busy_ms) == 2
        assert all(busy >= SlowEngine.delay * 1000.0 for busy in stats.shard_busy_ms)
        assert stats.max_shard_busy_ms == max(stats.shard_busy_ms)


class TestFailurePropagation:
    def test_shard_failure_reaches_the_batch_future_and_poisons_the_pipeline(self):
        case = StreamCase(seed=17, num_documents=40)

        def factory(window):
            engine = FailingEngine(window)
            engine.fail_on = case.documents[25].doc_id
            return engine

        cluster = make_cluster(num_shards=2, engine_factory=factory)
        register_case(cluster, case)

        async def run():
            async with ClusterPipeline(cluster) as pipeline:
                good = await pipeline.submit(case.documents[:20])
                assert await good  # the healthy batch still merges
                bad = await pipeline.submit(case.documents[20:30])
                with pytest.raises(RuntimeError, match="shard refused"):
                    await bad
                # After a failure the pipeline refuses further work...
                with pytest.raises(ServiceError):
                    await pipeline.submit(case.documents[30:])
                # ...and drain() surfaces the root cause.
                with pytest.raises(ServiceError) as excinfo:
                    await pipeline.drain()
                assert isinstance(excinfo.value.__cause__, RuntimeError)

        asyncio.run(run())


class TestCancelledAwaits:
    def test_cancelling_an_await_does_not_wedge_the_pipeline(self):
        """A timed-out ``wait_for`` around a batch future must not kill the
        merge barrier: the batch is still processed, later batches still
        resolve, and close stays clean (regression test)."""
        case = StreamCase(seed=61, num_documents=60)
        cluster = make_cluster(
            num_shards=2, engine_factory=lambda window: SlowEngine(window)
        )
        register_case(cluster, case)

        async def run():
            async with ClusterPipeline(cluster, max_workers=2) as pipeline:
                first = await pipeline.submit(case.documents[:20])
                with pytest.raises(asyncio.TimeoutError):
                    await asyncio.wait_for(asyncio.shield(first), timeout=0.0001)
                first.cancel()
                # The pipeline must keep accepting and resolving work.
                second = await pipeline.submit(case.documents[20:40])
                assert await second
                await pipeline.drain()
                assert pipeline.stats.merged_batches == 2

        asyncio.run(run())
        # Both batches reached the shards despite the cancelled await.
        assert len(cluster.window) == 16


class TestLifecycle:
    def test_submit_before_start_and_after_close_raise(self):
        async def run():
            pipeline = ClusterPipeline(make_cluster())
            with pytest.raises(ServiceError):
                await pipeline.submit([])
            await pipeline.start()
            with pytest.raises(ServiceError):
                await pipeline.start()
            await pipeline.aclose()
            assert pipeline.closed
            with pytest.raises(ServiceError):
                await pipeline.submit([])
            with pytest.raises(ServiceError):
                await pipeline.start()
            await pipeline.aclose()  # idempotent

        asyncio.run(run())

    def test_aclose_flushes_submitted_batches(self):
        case = StreamCase(seed=19, num_documents=60)
        cluster = make_cluster()
        register_case(cluster, case)

        async def run():
            pipeline = ClusterPipeline(cluster, queue_depth=3)
            await pipeline.start()
            futures = [
                await pipeline.submit(batch) for batch in chunked(case.documents, 10)
            ]
            await pipeline.aclose()  # no explicit drain
            assert all(future.done() for future in futures)
            return pipeline.stats

        stats = asyncio.run(run())
        assert stats.merged_batches == stats.batches == 6

    def test_external_executor_is_not_shut_down(self):
        from concurrent.futures import ThreadPoolExecutor

        case = StreamCase(seed=23, num_documents=30)
        cluster = make_cluster()
        register_case(cluster, case)
        executor = ThreadPoolExecutor(max_workers=2)
        try:
            async def run():
                async with ClusterPipeline(cluster, executor=executor) as pipeline:
                    await pipeline.submit(case.documents)
                    await pipeline.drain()

            asyncio.run(run())
            # Still usable afterwards: the pipeline must not have shut it down.
            assert executor.submit(lambda: 41 + 1).result() == 42
        finally:
            executor.shutdown(wait=True)
