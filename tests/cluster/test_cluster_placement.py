"""Tests for the query placement policies."""

import pytest

from repro.cluster.placement import (
    CostModelPlacement,
    HashPlacement,
    PlacementPolicy,
    RoundRobinPlacement,
    make_placement,
)
from repro.exceptions import ConfigurationError
from tests.conftest import make_query


class TestRoundRobinPlacement:
    def test_cycles_through_shards(self):
        policy = RoundRobinPlacement(3)
        shards = [policy.place(make_query(qid, {1: 1.0})) for qid in range(7)]
        assert shards == [0, 1, 2, 0, 1, 2, 0]
        assert policy.query_counts() == [3, 2, 2]

    def test_forget_releases_count(self):
        policy = RoundRobinPlacement(2)
        query = make_query(0, {1: 1.0})
        shard = policy.place(query)
        policy.forget(query, shard)
        assert policy.query_counts() == [0, 0]


class TestHashPlacement:
    def test_deterministic_across_instances(self):
        queries = [make_query(qid, {1: 1.0}) for qid in range(50)]
        first = [HashPlacement(4).choose(q) for q in queries]
        second = [HashPlacement(4).choose(q) for q in queries]
        assert first == second

    def test_scatters_dense_id_ranges(self):
        policy = HashPlacement(4)
        shards = [policy.place(make_query(qid, {1: 1.0})) for qid in range(100)]
        counts = policy.query_counts()
        assert set(shards) == {0, 1, 2, 3}
        # Dense ids must not all land on one shard (the builtin-int-hash
        # failure mode); allow generous imbalance.
        assert max(counts) <= 60


class TestCostModelPlacement:
    def test_longer_queries_cost_more(self):
        policy = CostModelPlacement(2)
        short = make_query(0, {1: 1.0}, k=1)
        long = make_query(1, {t: 1.0 for t in range(30)}, k=1)
        assert policy.estimated_cost(long) > policy.estimated_cost(short)

    def test_larger_k_costs_more(self):
        policy = CostModelPlacement(2)
        small_k = make_query(0, {1: 1.0, 2: 1.0}, k=1)
        big_k = make_query(1, {1: 1.0, 2: 1.0}, k=50)
        assert policy.estimated_cost(big_k) > policy.estimated_cost(small_k)

    def test_expensive_queries_spread_across_shards(self):
        policy = CostModelPlacement(2)
        heavy = [make_query(qid, {t: 1.0 for t in range(40)}, k=10) for qid in range(4)]
        shards = [policy.place(q) for q in heavy]
        assert shards == [0, 1, 0, 1]
        loads = policy.shard_loads()
        assert loads[0] == pytest.approx(loads[1])

    def test_greedy_balances_mixed_workload(self):
        policy = CostModelPlacement(3)
        queries = [
            make_query(qid, {t: 1.0 for t in range(2 + (qid % 5) * 8)}, k=5)
            for qid in range(30)
        ]
        for query in queries:
            policy.place(query)
        loads = policy.shard_loads()
        assert max(loads) < 1.5 * min(loads)

    def test_forget_releases_load(self):
        policy = CostModelPlacement(2)
        query = make_query(0, {1: 1.0, 2: 1.0}, k=3)
        shard = policy.place(query)
        policy.forget(query, shard)
        assert policy.shard_loads() == [0.0, 0.0]
        assert policy.query_counts() == [0, 0]


class TestPolicyContract:
    def test_make_placement_by_name(self):
        assert isinstance(make_placement("round-robin", 2), RoundRobinPlacement)
        assert isinstance(make_placement("hash", 2), HashPlacement)
        assert isinstance(make_placement("cost", 2), CostModelPlacement)

    def test_unknown_policy_rejected(self):
        with pytest.raises(ConfigurationError):
            make_placement("best-effort", 2)

    def test_zero_shards_rejected(self):
        with pytest.raises(ConfigurationError):
            RoundRobinPlacement(0)

    def test_out_of_range_choice_rejected(self):
        class Broken(PlacementPolicy):
            name = "broken"

            def choose(self, query):
                return self.num_shards

        with pytest.raises(ConfigurationError):
            Broken(2).place(make_query(0, {1: 1.0}))
