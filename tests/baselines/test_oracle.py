"""Tests for the oracle reference engine."""

import pytest

from repro.baselines.oracle import OracleEngine
from repro.documents.window import CountBasedWindow, TimeBasedWindow
from repro.exceptions import UnknownQueryError
from tests.conftest import make_document, make_query


class TestOracleEngine:
    def test_topk_by_full_scan(self):
        engine = OracleEngine(CountBasedWindow(10))
        engine.register_query(make_query(0, {1: 1.0}, k=2))
        engine.process(make_document(0, {1: 0.3}, arrival_time=0.0))
        engine.process(make_document(1, {1: 0.9}, arrival_time=1.0))
        engine.process(make_document(2, {1: 0.5}, arrival_time=2.0))
        assert [e.doc_id for e in engine.current_result(0)] == [1, 2]

    def test_zero_score_documents_excluded(self):
        engine = OracleEngine(CountBasedWindow(10))
        engine.register_query(make_query(0, {1: 1.0}, k=5))
        engine.process(make_document(0, {2: 0.9}, arrival_time=0.0))
        assert engine.current_result(0) == []

    def test_window_respected(self):
        engine = OracleEngine(CountBasedWindow(2))
        engine.register_query(make_query(0, {1: 1.0}, k=2))
        for i in range(4):
            engine.process(make_document(i, {1: 0.9 - 0.1 * i}, arrival_time=float(i)))
        assert [e.doc_id for e in engine.current_result(0)] == [2, 3]

    def test_ties_broken_by_doc_id(self):
        engine = OracleEngine(CountBasedWindow(5))
        engine.register_query(make_query(0, {1: 1.0}, k=1))
        engine.process(make_document(5, {1: 0.5}, arrival_time=0.0))
        engine.process(make_document(3, {1: 0.5}, arrival_time=1.0))
        assert [e.doc_id for e in engine.current_result(0)] == [3]

    def test_result_changes_reported(self):
        engine = OracleEngine(CountBasedWindow(3))
        engine.register_query(make_query(0, {1: 1.0}, k=1))
        changes = engine.process(make_document(0, {1: 0.9}, arrival_time=0.0))
        assert [c.query_id for c in changes] == [0]

    def test_advance_time(self):
        engine = OracleEngine(TimeBasedWindow(span=5.0))
        engine.register_query(make_query(0, {1: 1.0}, k=1))
        engine.process(make_document(0, {1: 0.9}, arrival_time=0.0))
        changes = engine.advance_time(10.0)
        assert engine.current_result(0) == []
        assert [c.query_id for c in changes] == [0]

    def test_unknown_query(self):
        engine = OracleEngine(CountBasedWindow(2))
        with pytest.raises(UnknownQueryError):
            engine.current_result(3)

    def test_unregister(self):
        engine = OracleEngine(CountBasedWindow(2))
        engine.register_query(make_query(0, {1: 1.0}, k=1))
        engine.unregister_query(0)
        assert engine.query_ids() == []
