"""Tests for the k_max-enhanced Naive baseline (the paper's competitor)."""

import pytest

from repro.baselines.kmax import (
    AdaptiveKMaxPolicy,
    AnalyticalKMaxPolicy,
    FixedKMaxPolicy,
    KMaxNaiveEngine,
)
from repro.baselines.naive import NaiveEngine
from repro.baselines.oracle import OracleEngine
from repro.documents.window import CountBasedWindow
from repro.exceptions import ConfigurationError
from tests.conftest import StreamCase, assert_same_topk, make_document, make_query


class TestFixedKMaxPolicy:
    def test_capacity_is_multiplier_times_k(self):
        policy = FixedKMaxPolicy(multiplier=2.5)
        assert policy.capacity(make_query(0, {1: 1.0}, k=10)) == 25

    def test_capacity_never_below_k(self):
        policy = FixedKMaxPolicy(multiplier=1.0)
        assert policy.capacity(make_query(0, {1: 1.0}, k=7)) == 7

    def test_multiplier_validation(self):
        with pytest.raises(ConfigurationError):
            FixedKMaxPolicy(multiplier=0.5)


class TestAdaptiveKMaxPolicy:
    def test_parameter_validation(self):
        with pytest.raises(ConfigurationError):
            AdaptiveKMaxPolicy(initial_multiplier=0.5)
        with pytest.raises(ConfigurationError):
            AdaptiveKMaxPolicy(target_gap=0)
        with pytest.raises(ConfigurationError):
            AdaptiveKMaxPolicy(max_capacity=0)

    def test_capacity_grows_when_recomputations_are_frequent(self):
        policy = AdaptiveKMaxPolicy(initial_multiplier=2.0, target_gap=100)
        query = make_query(0, {1: 1.0}, k=10)
        initial = policy.capacity(query)
        policy.observe_recompute(query, arrival_count=10)
        policy.observe_recompute(query, arrival_count=20)   # gap 10 < 100
        assert policy.capacity(query) > initial

    def test_capacity_shrinks_when_recomputations_are_rare(self):
        policy = AdaptiveKMaxPolicy(initial_multiplier=8.0, target_gap=10)
        query = make_query(0, {1: 1.0}, k=10)
        initial = policy.capacity(query)
        policy.observe_recompute(query, arrival_count=100)
        policy.observe_recompute(query, arrival_count=1_000)  # gap 900 > 4 * 10
        assert policy.capacity(query) < initial

    def test_capacity_never_below_k(self):
        policy = AdaptiveKMaxPolicy(initial_multiplier=1.0, target_gap=10)
        query = make_query(0, {1: 1.0}, k=5)
        policy.observe_recompute(query, arrival_count=10)
        policy.observe_recompute(query, arrival_count=10_000)
        policy.observe_recompute(query, arrival_count=100_000)
        assert policy.capacity(query) >= 5


class TestAnalyticalKMaxPolicy:
    def test_parameter_validation(self):
        with pytest.raises(ConfigurationError):
            AnalyticalKMaxPolicy(window_size=0)
        with pytest.raises(ConfigurationError):
            AnalyticalKMaxPolicy(window_size=100, alpha=-1.0)

    def test_capacity_scales_with_sqrt_window(self):
        query = make_query(0, {1: 1.0}, k=10)
        small = AnalyticalKMaxPolicy(window_size=100).capacity(query)    # k + sqrt(100)=20
        large = AnalyticalKMaxPolicy(window_size=10_000).capacity(query)  # k + sqrt(10000)=110
        assert small == 20
        assert large == 110
        assert large > small

    def test_capacity_never_below_k_or_above_window(self):
        query = make_query(0, {1: 1.0}, k=5)
        tiny = AnalyticalKMaxPolicy(window_size=4).capacity(query)
        assert tiny <= 4 or tiny == query.k  # clamped to the window
        assert tiny >= min(query.k, 4)

    def test_alpha_scales_capacity(self):
        query = make_query(0, {1: 1.0}, k=0 + 1)
        modest = AnalyticalKMaxPolicy(window_size=10_000, alpha=1.0).capacity(query)
        aggressive = AnalyticalKMaxPolicy(window_size=10_000, alpha=2.0).capacity(query)
        assert aggressive > modest


class TestKMaxEngine:
    def test_materialised_view_holds_more_than_k(self):
        engine = KMaxNaiveEngine(CountBasedWindow(10), policy=FixedKMaxPolicy(3.0))
        engine.register_query(make_query(0, {1: 1.0}, k=2))
        for i in range(8):
            engine.process(make_document(i, {1: 0.1 + 0.1 * i}, arrival_time=float(i)))
        assert len(engine.result_list(0)) == 6  # 3 * k

    def test_fewer_recomputations_than_plain_naive(self):
        """The whole point of the k_max enhancement (Yi et al.)."""
        case = StreamCase(seed=31, num_documents=200, num_queries=6)
        window = 10
        naive = NaiveEngine(CountBasedWindow(window))
        kmax = KMaxNaiveEngine(CountBasedWindow(window), policy=FixedKMaxPolicy(4.0))
        for query in case.queries:
            naive.register_query(query)
            kmax.register_query(query)
        for document in case.documents:
            naive.process(document)
            kmax.process(document)
        assert kmax.counters.full_recomputations <= naive.counters.full_recomputations

    def test_default_policy_is_fixed_2x(self):
        engine = KMaxNaiveEngine(CountBasedWindow(5))
        assert isinstance(engine.policy, FixedKMaxPolicy)
        assert engine.policy.multiplier == 2.0

    @pytest.mark.parametrize(
        "policy",
        [
            FixedKMaxPolicy(2.0),
            FixedKMaxPolicy(4.0),
            AdaptiveKMaxPolicy(),
            AnalyticalKMaxPolicy(window_size=12),
        ],
    )
    def test_matches_oracle_on_seeded_streams(self, policy):
        case = StreamCase(seed=41, num_documents=150)
        window = 12
        kmax = KMaxNaiveEngine(CountBasedWindow(window), policy=policy)
        oracle = OracleEngine(CountBasedWindow(window))
        for query in case.queries:
            kmax.register_query(query)
            oracle.register_query(query)
        for position, document in enumerate(case.documents):
            kmax.process(document)
            oracle.process(document)
            if position % 6 == 0 or position >= len(case.documents) - 5:
                for query in case.queries:
                    assert_same_topk(
                        oracle.current_result(query.query_id),
                        kmax.current_result(query.query_id),
                        context=f"(query {query.query_id}, event {position})",
                    )
