"""Tests for the Naive baseline."""

import pytest

from repro.baselines.naive import NaiveEngine
from repro.baselines.oracle import OracleEngine
from repro.documents.window import CountBasedWindow
from repro.exceptions import UnknownQueryError
from tests.conftest import StreamCase, assert_same_topk, make_document, make_query


class TestNaiveBasics:
    def test_initial_result_over_populated_window(self):
        engine = NaiveEngine(CountBasedWindow(5))
        engine.process(make_document(0, {1: 0.9}, arrival_time=0.0))
        engine.process(make_document(1, {1: 0.5}, arrival_time=1.0))
        engine.register_query(make_query(0, {1: 1.0}, k=1))
        assert [e.doc_id for e in engine.current_result(0)] == [0]

    def test_scores_every_query_on_every_arrival(self):
        engine = NaiveEngine(CountBasedWindow(5))
        for query_id in range(4):
            engine.register_query(make_query(query_id, {query_id: 1.0}, k=1))
        engine.counters.reset()
        engine.process(make_document(0, {0: 0.5}, arrival_time=0.0))
        # Naive pays one score computation per installed query, even for
        # queries that share no terms with the document.
        assert engine.counters.scores_computed == 4

    def test_recomputes_when_result_shrinks_below_k(self):
        engine = NaiveEngine(CountBasedWindow(3))
        engine.register_query(make_query(0, {1: 1.0}, k=1))
        engine.process(make_document(0, {1: 0.9}, arrival_time=0.0))
        engine.process(make_document(1, {1: 0.5}, arrival_time=1.0))
        engine.process(make_document(2, {1: 0.4}, arrival_time=2.0))
        recomputations_before = engine.counters.full_recomputations
        # document 0 (the current top-1) expires with this arrival
        engine.process(make_document(3, {2: 0.1}, arrival_time=3.0))
        assert engine.counters.full_recomputations > recomputations_before
        assert [e.doc_id for e in engine.current_result(0)] == [1]

    def test_unregister(self):
        engine = NaiveEngine(CountBasedWindow(3))
        engine.register_query(make_query(0, {1: 1.0}, k=1))
        engine.unregister_query(0)
        assert engine.query_ids() == []
        with pytest.raises(UnknownQueryError):
            engine.current_result(0)

    def test_result_changes_reported(self):
        engine = NaiveEngine(CountBasedWindow(3))
        engine.register_query(make_query(0, {1: 1.0}, k=1))
        changes = engine.process(make_document(0, {1: 0.9}, arrival_time=0.0))
        assert [c.query_id for c in changes] == [0]
        changes = engine.process(make_document(1, {2: 0.9}, arrival_time=1.0))
        assert changes == []

    def test_track_changes_disabled(self):
        engine = NaiveEngine(CountBasedWindow(3), track_changes=False)
        engine.register_query(make_query(0, {1: 1.0}, k=1))
        assert engine.process(make_document(0, {1: 0.9}, arrival_time=0.0)) == []

    def test_result_list_exposed_for_tests(self):
        engine = NaiveEngine(CountBasedWindow(3))
        engine.register_query(make_query(0, {1: 1.0}, k=2))
        engine.process(make_document(0, {1: 0.9}, arrival_time=0.0))
        assert 0 in engine.result_list(0)


class TestNaiveMatchesOracle:
    @pytest.mark.parametrize("seed", [21, 22, 23])
    def test_seeded_streams(self, seed):
        case = StreamCase(seed=seed, num_documents=120)
        window = 12
        naive = NaiveEngine(CountBasedWindow(window))
        oracle = OracleEngine(CountBasedWindow(window))
        for query in case.queries:
            naive.register_query(query)
            oracle.register_query(query)
        for position, document in enumerate(case.documents):
            naive.process(document)
            oracle.process(document)
            if position % 6 == 0 or position >= len(case.documents) - 5:
                for query in case.queries:
                    assert_same_topk(
                        oracle.current_result(query.query_id),
                        naive.current_result(query.query_id),
                        context=f"(seed {seed}, query {query.query_id}, event {position})",
                    )
