"""Tests for the throughput / stability analysis."""

import pytest

from repro.documents.corpus import SyntheticCorpusConfig
from repro.workloads.generators import WorkloadConfig
from repro.workloads.throughput import (
    ThroughputResult,
    analyse_throughput,
    measure_service_time,
    simulate_queue,
)


def tiny_config(**overrides):
    base = WorkloadConfig(
        num_queries=20,
        query_length=4,
        k=3,
        window_size=50,
        measured_events=20,
        corpus=SyntheticCorpusConfig(dictionary_size=500, mean_log_length=3.0, seed=1),
        seed=1,
        arrival_rate=200.0,
    )
    return base.with_overrides(**overrides) if overrides else base


class TestThroughputResult:
    def test_derived_quantities(self):
        result = ThroughputResult(engine="ita", mean_service_ms=2.0, events=100, target_rate=200.0)
        assert result.max_sustainable_rate == pytest.approx(500.0)  # 1000 / 2
        assert result.utilisation == pytest.approx(0.4)             # 200 * 2 / 1000
        assert result.stable is True

    def test_unstable_when_utilisation_exceeds_one(self):
        result = ThroughputResult(engine="naive", mean_service_ms=10.0, events=100, target_rate=200.0)
        assert result.utilisation == pytest.approx(2.0)
        assert result.stable is False

    def test_zero_service_time_is_infinite_rate(self):
        result = ThroughputResult(engine="ita", mean_service_ms=0.0, events=0, target_rate=200.0)
        assert result.max_sustainable_rate == float("inf")


class TestMeasureServiceTime:
    def test_returns_positive_service_time(self):
        from repro.workloads.generators import build_workload
        from repro.workloads.runner import build_engine

        config = tiny_config()
        workload = build_workload(config)
        engine = build_engine("ita", config)
        service = measure_service_time(engine, workload)
        assert service >= 0.0


class TestAnalyseThroughput:
    def test_reports_every_engine(self):
        results = analyse_throughput(tiny_config(), engines=("ita", "naive-kmax"))
        assert set(results) == {"ita", "naive-kmax"}
        for result in results.values():
            assert result.events == 20
            assert result.mean_service_ms >= 0.0

    def test_custom_target_rate(self):
        results = analyse_throughput(tiny_config(), engines=("ita",), target_rate=1000.0)
        assert results["ita"].target_rate == 1000.0


class TestSimulateQueue:
    def test_stable_queue_has_bounded_backlog(self):
        # service 1ms, arrivals 100/s -> utilisation 0.1, backlog stays small
        stats = simulate_queue(service_time_ms=1.0, arrival_rate=100.0, num_arrivals=2000, seed=1)
        assert stats["utilisation"] == pytest.approx(0.1)
        assert stats["max_backlog"] < 20

    def test_unstable_queue_backlog_grows(self):
        # service 20ms, arrivals 100/s -> utilisation 2.0, backlog explodes
        stats = simulate_queue(service_time_ms=20.0, arrival_rate=100.0, num_arrivals=2000, seed=1)
        assert stats["utilisation"] == pytest.approx(2.0)
        assert stats["final_backlog"] > 100

    def test_higher_utilisation_means_larger_backlog(self):
        low = simulate_queue(service_time_ms=2.0, arrival_rate=100.0, num_arrivals=2000, seed=2)
        high = simulate_queue(service_time_ms=8.0, arrival_rate=100.0, num_arrivals=2000, seed=2)
        assert high["mean_backlog"] > low["mean_backlog"]

    def test_negative_service_time_rejected(self):
        with pytest.raises(ValueError):
            simulate_queue(service_time_ms=-1.0, arrival_rate=100.0, num_arrivals=10)
