"""Tests for the experiment CLI."""

import pytest

from repro.workloads.cli import build_parser, main


class TestParser:
    def test_defaults(self):
        args = build_parser().parse_args(["figure3a"])
        assert args.experiment == "figure3a"
        assert args.scale == "small"
        assert args.output is None

    def test_scale_choices(self):
        parser = build_parser()
        assert parser.parse_args(["figure3b", "--scale", "paper"]).scale == "paper"
        with pytest.raises(SystemExit):
            parser.parse_args(["figure3b", "--scale", "gigantic"])

    def test_unknown_experiment_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["figure3z"])


class TestMain:
    def test_list_prints_experiments(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "figure3a" in out and "figure3b" in out
        assert "ablation-kmax" in out

    def test_smoke_run_prints_table_and_writes_output(self, tmp_path, capsys):
        output = tmp_path / "results.txt"
        code = main(["ablation-window-type", "--scale", "smoke", "--quiet", "--output", str(output)])
        assert code == 0
        printed = capsys.readouterr().out
        assert "count-based" in printed and "time-based" in printed
        assert output.exists()
        assert "speedup" in output.read_text() or "ITA" in output.read_text()
