"""Tracked TODO: the proc cluster's dispatch tax versus in-process batching.

The committed benchmark artifact records ``cluster_proc_over_batched``
well below 1.0: the out-of-process cluster replicates every document
batch to *every* worker process (each shard maintains the full sliding
window, so replication is semantically required), and each worker then
re-applies the whole batch to its own window on top of the RPC framing
cost.  Shared request encoding (one JSON params encode per fan-out,
byte-spliced per worker -- see ``repro/net/protocol.py``) removed the
O(workers) encode from the dispatch path, but the per-worker window
re-application remains; ``docs/BENCHMARKING.md`` ("Reading the
concurrency column") documents the honest interpretation.

This test *is* the tracking issue: it asserts the parity the dispatch
path has not reached, and is expected to fail until per-worker window
maintenance is moved off the scoring path (e.g. a shared window service
or windowless scoring workers).  When the committed artifact's ratio
reaches 1.0 the xpass flags the marker -- and the BENCHMARKING.md
caveat -- for removal.
"""

import json
from pathlib import Path

import pytest

ARTIFACT = Path(__file__).resolve().parents[2] / "BENCH_results.json"


@pytest.mark.xfail(
    reason=(
        "proc dispatch replicates each batch to every worker's window; "
        "parity with in-process batching needs per-worker window "
        "maintenance off the scoring path (tracked TODO)"
    ),
    strict=False,
)
def test_proc_dispatch_reaches_batched_parity():
    document = json.loads(ARTIFACT.read_text(encoding="utf-8"))
    ratio = document["summary"]["cluster_proc_over_batched"]
    assert ratio >= 1.0, (
        f"committed cluster_proc_over_batched = {ratio}: the proc cluster "
        "still pays the per-worker batch re-application tax"
    )
