"""Tests for workload generation."""

import pytest

from repro.documents.corpus import SyntheticCorpus, SyntheticCorpusConfig
from repro.exceptions import ConfigurationError
from repro.weighting.schemes import CosineWeighting, OkapiBM25Weighting
from repro.workloads.generators import (
    QueryWorkloadGenerator,
    WorkloadConfig,
    build_workload,
)


def small_config(**overrides):
    base = WorkloadConfig(
        num_queries=10,
        query_length=4,
        k=3,
        window_size=30,
        measured_events=10,
        corpus=SyntheticCorpusConfig(dictionary_size=500, mean_log_length=3.0, seed=1),
        seed=1,
    )
    return base.with_overrides(**overrides) if overrides else base


class TestWorkloadConfig:
    def test_defaults_match_paper_parameters(self):
        config = WorkloadConfig()
        assert config.num_queries == 1_000
        assert config.k == 10
        assert config.window_size == 1_000
        assert config.arrival_rate == 200.0
        assert config.zipfian_query_terms is False  # "randomly from the dictionary"

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            small_config(num_queries=0).validate()
        with pytest.raises(ConfigurationError):
            small_config(k=0).validate()
        with pytest.raises(ConfigurationError):
            small_config(window_size=0).validate()
        with pytest.raises(ConfigurationError):
            small_config(scoring="bm42").validate()

    def test_with_overrides_does_not_mutate_original(self):
        base = small_config()
        changed = base.with_overrides(k=7)
        assert base.k == 3 and changed.k == 7

    def test_weighting_scheme_selection(self):
        assert isinstance(small_config().weighting(), CosineWeighting)
        assert isinstance(small_config(scoring="okapi").weighting(), OkapiBM25Weighting)


class TestQueryWorkloadGenerator:
    def test_generates_requested_queries(self):
        config = small_config()
        corpus = SyntheticCorpus(config.corpus)
        queries = QueryWorkloadGenerator(corpus, config).generate()
        assert len(queries) == 10
        assert all(len(q) == 4 for q in queries)
        assert all(q.k == 3 for q in queries)
        assert [q.query_id for q in queries] == list(range(10))

    def test_deterministic_for_fixed_seed(self):
        config = small_config()
        a = QueryWorkloadGenerator(SyntheticCorpus(config.corpus), config).generate()
        b = QueryWorkloadGenerator(SyntheticCorpus(config.corpus), config).generate()
        assert [sorted(q.terms()) for q in a] == [sorted(q.terms()) for q in b]


class TestBuildWorkload:
    def test_prefill_and_measured_sizes(self):
        workload = build_workload(small_config())
        assert len(workload.prefill) == 30
        assert len(workload.measured) == 10
        assert len(workload.all_documents) == 40

    def test_arrival_times_strictly_increase(self):
        workload = build_workload(small_config())
        times = [d.arrival_time for d in workload.all_documents]
        assert all(b > a for a, b in zip(times, times[1:]))

    def test_doc_ids_are_sequential(self):
        workload = build_workload(small_config())
        assert [d.doc_id for d in workload.all_documents] == list(range(40))

    def test_invalid_config_rejected(self):
        with pytest.raises(ConfigurationError):
            build_workload(small_config(measured_events=0))
