"""Tests for the machine-readable performance harness."""

import json

import pytest

from repro.workloads.cli import main
from repro.workloads.perfjson import (
    SCHEMA,
    BenchRecord,
    default_suite,
    run_bench_suite,
    run_case,
)


class TestSuiteDefinition:
    def test_covers_enough_workloads_and_engines(self):
        suite = default_suite("smoke")
        workloads = {case.workload for case in suite}
        engines = {name for case in suite for name in case.modes}
        assert len(workloads) >= 4
        assert len(engines) >= 3

    def test_headline_workload_measures_both_ita_modes(self):
        suite = default_suite("smoke")
        figure3a = next(case for case in suite if case.workload == "figure3a")
        assert tuple(figure3a.modes["ita"]) == (
            "sequential", "batched", "instrumented", "wal",
        )

    def test_every_case_resolves_a_point(self):
        for case in default_suite("smoke"):
            assert case.point in tuple(case.definition.points)

    def test_cluster_workload_measures_the_async_pipeline(self):
        suite = default_suite("smoke")
        cluster = next(case for case in suite if case.workload == "cluster-scaling")
        assert "async" in cluster.modes["sharded-ita"]

    def test_rejects_non_positive_repeats(self):
        case = default_suite("smoke")[0]
        with pytest.raises(ValueError):
            run_case(case, repeats=0)

    def test_rejects_non_positive_async_workers(self):
        case = default_suite("smoke")[0]
        with pytest.raises(ValueError):
            run_case(case, async_workers=0)

    def test_rejects_non_positive_proc_workers(self):
        case = default_suite("smoke")[0]
        with pytest.raises(ValueError):
            run_case(case, proc_workers=0)

    def test_cluster_workload_measures_the_proc_cluster(self):
        suite = default_suite("smoke")
        cluster = next(case for case in suite if case.workload == "cluster-scaling")
        assert tuple(cluster.modes["sharded-proc"]) == ("proc",)


class TestRunCase:
    def test_records_have_consistent_metrics(self):
        case = default_suite("smoke")[0]
        records = run_case(case, batch_size=8, repeats=1)
        assert {record.mode for record in records} == {
            "sequential",
            "batched",
            "instrumented",
            "wal",
            "wal-recovery",
        }
        for record in records:
            assert isinstance(record, BenchRecord)
            assert record.workload == case.workload
            assert record.events == case.point.config.measured_events
            assert record.docs_per_sec == pytest.approx(1000.0 / record.mean_ms)
            if record.mode in ("batched", "instrumented", "wal", "wal-recovery"):
                assert record.batch_size == 8
            else:
                assert record.batch_size is None
            assert record.concurrency is None

    def test_async_mode_measures_single_and_multi_worker(self):
        suite = default_suite("smoke")
        cluster = next(case for case in suite if case.workload == "cluster-scaling")
        records = run_case(cluster, batch_size=8, repeats=1, async_workers=3)
        async_records = [record for record in records if record.mode == "async"]
        assert sorted(record.concurrency for record in async_records) == [1, 3]
        for record in async_records:
            assert record.batch_size == 8
            assert record.docs_per_sec > 0.0
            assert record.scores_per_event > 0.0

    def test_proc_mode_measures_single_and_multi_worker(self):
        suite = default_suite("smoke")
        cluster = next(case for case in suite if case.workload == "cluster-scaling")
        records = run_case(cluster, batch_size=8, repeats=1, proc_workers=2)
        proc_records = [record for record in records if record.mode == "proc"]
        assert sorted(record.concurrency for record in proc_records) == [1, 2]
        for record in proc_records:
            assert record.engine == "sharded-proc"
            assert record.batch_size == 8
            assert record.docs_per_sec > 0.0
            assert record.scores_per_event > 0.0


class TestRunBenchSuite:
    def test_single_worker_only_run_omits_the_speedup_ratio(self):
        """--async-workers/--proc-workers 1 measure only the baseline
        cells; the summary must not fabricate 1.0 self-ratios from them."""
        document = run_bench_suite(
            scale="smoke", repeats=1, async_workers=1, proc_workers=1,
            queries_max=0,
        )
        async_cells = [r for r in document["results"] if r["mode"] == "async"]
        assert [r["concurrency"] for r in async_cells] == [1]
        assert "cluster_async_multi_over_single_worker" not in document["summary"]
        proc_cells = [r for r in document["results"] if r["mode"] == "proc"]
        assert [r["concurrency"] for r in proc_cells] == [1]
        assert "cluster_proc_multi_over_single" not in document["summary"]
        # The dispatch-tax ratio only needs the baseline cell, so it stays.
        assert "cluster_proc_over_batched" in document["summary"]

    def test_smoke_suite_document_shape(self):
        # queries_max=10_000 keeps the query-scale cells to the small
        # count (the 100k cell is CI's queryscale-smoke job's business).
        document = run_bench_suite(scale="smoke", repeats=1, queries_max=10_000)
        assert document["schema"] == SCHEMA
        assert document["scale"] == "smoke"
        assert document["queries_max"] == 10_000
        assert len(document["workloads"]) >= 4
        assert len(document["engines"]) >= 3
        assert "figure3a_ita_batched_over_sequential" in document["summary"]
        assert "service_facade_over_direct" in document["summary"]
        assert "cluster_async_multi_over_single_worker" in document["summary"]
        assert "figure3a_ita_wal_over_batched" in document["summary"]
        assert "figure3a_wal_recovery_ms" in document["summary"]
        assert "cluster_proc_multi_over_single" in document["summary"]
        assert document["summary"]["queries_dedup_bytes_ratio_at"] == 10_000
        assert document["summary"]["queries_dedup_bytes_ratio"] > 1.0
        assert "queries_dedup_throughput_ratio" in document["summary"]
        for record in document["results"]:
            assert record["events"] > 0
            assert record["docs_per_sec"] > 0.0
            assert record["mean_ms"] > 0.0
            assert record["p99_ms"] >= record["p50_ms"] >= 0.0
            assert record["mode"] in (
                "sequential", "batched", "instrumented", "async", "proc",
                "wal", "wal-recovery", "direct", "facade",
                "dedup-off", "dedup-on",
            )
            if record["mode"] in ("async", "proc"):
                assert record["concurrency"] >= 1
            else:
                assert record["concurrency"] is None
            if record["workload"] == "query-scale":
                assert record["subscriptions"] == 10_000
                assert record["bytes_per_query"] > 0.0
            else:
                assert record["subscriptions"] is None
                assert record["bytes_per_query"] is None
        # The document must survive a JSON round-trip unchanged.
        assert json.loads(json.dumps(document)) == document

    def test_queries_max_zero_skips_the_workload(self):
        document = run_bench_suite(scale="smoke", repeats=1, queries_max=0)
        assert "query-scale" not in document["workloads"]
        assert all(r["workload"] != "query-scale" for r in document["results"])
        assert "queries_dedup_bytes_ratio" not in document["summary"]


class TestCLI:
    def test_bench_all_writes_json(self, tmp_path, capsys):
        out = tmp_path / "BENCH_results.json"
        code = main(
            ["bench-all", "--scale", "smoke", "--quiet", "--repeats", "1",
             "--queries-max", "0", "--out", str(out)]
        )
        assert code == 0
        document = json.loads(out.read_text())
        assert document["schema"] == SCHEMA
        assert len(document["workloads"]) >= 4
        assert len(document["engines"]) >= 3
        printed = capsys.readouterr().out
        assert "figure3a_ita_batched_over_sequential" in printed

    def test_bench_all_rejects_negative_queries_max(self, tmp_path):
        with pytest.raises(SystemExit):
            main(
                ["bench-all", "--scale", "smoke", "--quiet",
                 "--queries-max", "-1", "--out", str(tmp_path / "out.json")]
            )
