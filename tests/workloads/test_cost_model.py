"""Tests for the analytical per-arrival cost models.

These check the models' internal consistency and, crucially, that their
*scaling laws* match the measured operation counters: ITA's predicted score
count is independent of the window size and grows with the query count,
while Naive's is dominated by the query count -- the paper's argument.
"""

import pytest

from repro.core.engine import ITAEngine
from repro.documents.window import CountBasedWindow
from repro.workloads.cost_model import (
    WorkloadParameters,
    ita_scores_per_arrival,
    naive_scores_per_arrival,
    speedup_estimate,
)
from repro.workloads.generators import WorkloadConfig, build_workload
from repro.documents.corpus import SyntheticCorpusConfig


def params(**overrides):
    base = dict(
        num_queries=500,
        query_length=10,
        dictionary_size=20_000,
        window_size=1_000,
        mean_doc_terms=120.0,
        k=10,
        kmax=20,
    )
    base.update(overrides)
    return WorkloadParameters(**base)


class TestOverlapProbability:
    def test_between_zero_and_one(self):
        assert 0.0 <= params().overlap_probability() <= 1.0

    def test_increases_with_query_length(self):
        short = params(query_length=2).overlap_probability()
        long = params(query_length=40).overlap_probability()
        assert long > short

    def test_increases_with_document_length(self):
        sparse = params(mean_doc_terms=20).overlap_probability()
        dense = params(mean_doc_terms=400).overlap_probability()
        assert dense > sparse

    def test_decreases_with_dictionary_size(self):
        small = params(dictionary_size=1_000).overlap_probability()
        large = params(dictionary_size=200_000).overlap_probability()
        assert large < small

    def test_degenerate_dictionary(self):
        assert params(dictionary_size=0).overlap_probability() == 0.0


class TestNaiveModel:
    def test_dominant_term_is_query_count(self):
        estimate = naive_scores_per_arrival(params(num_queries=1_000))
        # At least one score per query per arrival.
        assert estimate.scores_per_arrival >= 1_000

    def test_scales_linearly_with_queries(self):
        small = naive_scores_per_arrival(params(num_queries=100)).scores_per_arrival
        large = naive_scores_per_arrival(params(num_queries=1_000)).scores_per_arrival
        assert large > 9 * small  # ~linear in Q

    def test_larger_kmax_reduces_rescans(self):
        tight = naive_scores_per_arrival(params(kmax=11)).scores_per_arrival
        loose = naive_scores_per_arrival(params(kmax=80)).scores_per_arrival
        assert loose <= tight


class TestITAModel:
    def test_independent_of_window_size(self):
        small_n = ita_scores_per_arrival(params(window_size=10)).scores_per_arrival
        large_n = ita_scores_per_arrival(params(window_size=100_000)).scores_per_arrival
        assert small_n == pytest.approx(large_n)

    def test_grows_with_query_count(self):
        few = ita_scores_per_arrival(params(num_queries=100)).scores_per_arrival
        many = ita_scores_per_arrival(params(num_queries=1_000)).scores_per_arrival
        assert many > few

    def test_far_below_naive_for_many_queries(self):
        p = params(num_queries=1_000, query_length=10)
        assert ita_scores_per_arrival(p).scores_per_arrival < naive_scores_per_arrival(p).scores_per_arrival


class TestSpeedupEstimate:
    def test_score_ratio_is_bounded_and_stable_in_query_count(self):
        # Both engines scale ~linearly in Q, so the *score-computation*
        # ratio is roughly constant (approaching 1/(2*p_overlap)); it does
        # not grow with Q.  (The wall-clock advantage that does grow with Q
        # comes from ITA amortising its fixed per-posting overhead, which
        # this score-only model deliberately omits.)
        few = speedup_estimate(params(num_queries=100))
        many = speedup_estimate(params(num_queries=2_000))
        assert few > 1.0 and many > 1.0
        assert many == pytest.approx(few, rel=0.2)

    def test_advantage_is_larger_for_shorter_queries(self):
        # Shorter queries -> lower overlap -> ITA visits fewer queries ->
        # larger score-ratio, matching Fig 3(a)'s decreasing trend in n.
        short = speedup_estimate(params(query_length=4))
        long = speedup_estimate(params(query_length=40))
        assert short > long

    def test_predicts_order_of_magnitude_at_paper_scale(self):
        # 1000 queries, n=10, realistic overlap -> ITA should be predicted
        # at least several-fold cheaper in score computations.
        assert speedup_estimate(params(num_queries=1_000)) > 3.0


class TestModelMatchesMeasurement:
    def test_naive_score_count_matches_query_count(self):
        """The measured Naive scores/event should equal the query count (the
        model's dominant term)."""
        from repro.workloads.runner import build_engine

        config = WorkloadConfig(
            num_queries=60, query_length=8, k=5, window_size=200, measured_events=30,
            corpus=SyntheticCorpusConfig(dictionary_size=3_000, mean_log_length=3.5, seed=3),
            seed=3,
        )
        workload = build_workload(config)
        engine = build_engine("naive-kmax", config)
        for document in workload.prefill:
            engine.process(document)
        for query in workload.queries:
            engine.register_query(query)
        engine.counters.reset()
        for document in workload.measured:
            engine.process(document)
        measured_per_event = engine.counters.scores_computed / config.measured_events
        # Naive scores every query on every arrival, so the floor is Q.
        assert measured_per_event >= config.num_queries

    def test_ita_score_count_far_below_naive(self):
        from repro.workloads.runner import build_engine

        config = WorkloadConfig(
            num_queries=200, query_length=8, k=5, window_size=500, measured_events=40,
            corpus=SyntheticCorpusConfig(dictionary_size=5_000, mean_log_length=3.8, seed=4),
            seed=4,
        )
        workload = build_workload(config)
        counts = {}
        for name in ("ita", "naive-kmax"):
            engine = build_engine(name, config)
            for document in workload.prefill:
                engine.process(document)
            for query in workload.queries:
                engine.register_query(query)
            engine.counters.reset()
            for document in workload.measured:
                engine.process(document)
            counts[name] = engine.counters.scores_computed
        # Matches the model's qualitative prediction: ITA computes far fewer.
        assert counts["ita"] < counts["naive-kmax"]
