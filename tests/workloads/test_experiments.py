"""Tests for the experiment definitions."""

import pytest

from repro.exceptions import ExperimentError
from repro.workloads.experiments import (
    SCALES,
    ablation_k,
    ablation_kmax,
    ablation_num_queries,
    ablation_probe_order,
    ablation_rollup,
    ablation_scoring,
    ablation_window_type,
    all_experiments,
    cluster_scaling,
    figure_3a,
    figure_3b,
)


class TestScales:
    def test_three_scales_defined(self):
        assert set(SCALES) == {"smoke", "small", "paper"}

    def test_paper_scale_matches_paper_parameters(self):
        preset = SCALES["paper"]
        assert preset["num_queries"] == 1_000
        assert preset["dictionary_size"] == 181_978
        assert preset["max_window"] == 100_000

    def test_unknown_scale_rejected(self):
        with pytest.raises(ExperimentError):
            figure_3a("enormous")


class TestFigure3a:
    def test_sweeps_query_length_4_to_40(self):
        definition = figure_3a("smoke")
        assert definition.paper_reference == "Figure 3(a)"
        assert [p.value for p in definition.points] == [4, 10, 20, 30, 40]
        assert all(p.config.query_length == p.value for p in definition.points)

    def test_window_fixed_at_1000_or_scale_cap(self):
        definition = figure_3a("small")
        assert all(p.config.window_size == 1_000 for p in definition.points)
        smoke = figure_3a("smoke")
        assert all(p.config.window_size == 500 for p in smoke.points)

    def test_engines_include_ita_and_competitor(self):
        definition = figure_3a("smoke")
        assert "ita" in definition.engines
        assert "naive-kmax" in definition.engines


class TestFigure3b:
    def test_sweeps_window_size(self):
        definition = figure_3b("paper")
        assert [p.value for p in definition.points] == [10, 100, 1_000, 10_000, 100_000]
        assert all(p.config.query_length == 10 for p in definition.points)

    def test_scale_caps_window_sweep(self):
        smoke = figure_3b("smoke")
        assert max(p.value for p in smoke.points) <= SCALES["smoke"]["max_window"]

    def test_point_labels(self):
        definition = figure_3b("smoke")
        assert definition.point_labels()[0] == "N=10"


class TestAblations:
    def test_num_queries_sweep_scales_around_base(self):
        definition = ablation_num_queries("smoke")
        values = [p.value for p in definition.points]
        assert values == sorted(values)
        assert all(p.config.num_queries == p.value for p in definition.points)

    def test_k_sweep(self):
        definition = ablation_k("smoke")
        assert [p.config.k for p in definition.points] == [1, 5, 10, 25, 50]

    def test_kmax_sweep_sets_engine_options(self):
        definition = ablation_kmax("smoke")
        multipliers = [p.engine_options["kmax_multiplier"] for p in definition.points]
        assert multipliers == [1.0, 2.0, 4.0, 8.0]

    def test_window_type_ablation(self):
        definition = ablation_window_type("smoke")
        assert [p.config.time_based_window for p in definition.points] == [False, True]

    def test_scoring_ablation(self):
        definition = ablation_scoring("smoke")
        assert [p.config.scoring for p in definition.points] == ["cosine", "okapi-bm25"] or [
            p.config.scoring for p in definition.points
        ] == ["cosine", "okapi"]

    def test_rollup_ablation_compares_ita_variants(self):
        definition = ablation_rollup("smoke")
        assert definition.engines == ("ita", "ita-no-rollup")
        assert [p.value for p in definition.points] == [4, 10, 20, 40]

    def test_probe_order_ablation_compares_ita_variants(self):
        definition = ablation_probe_order("smoke")
        assert definition.engines == ("ita", "ita-round-robin")

    def test_all_experiments_enumerates_everything(self):
        definitions = all_experiments("smoke")
        ids = [d.experiment_id for d in definitions]
        assert ids[0] == "figure3a" and ids[1] == "figure3b"
        assert len(ids) == len(set(ids)) == 10
        assert "cluster-scaling" in ids

    def test_cluster_scaling_sweeps_shard_counts(self):
        definition = cluster_scaling("smoke")
        assert definition.engines == ("sharded-ita",)
        assert [p.value for p in definition.points] == [1, 2, 4, 8]
        assert all(
            p.engine_options["num_shards"] == p.value for p in definition.points
        )
