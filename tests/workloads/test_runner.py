"""Tests for the experiment runner (smoke-scale end-to-end runs)."""

import warnings

import pytest

from repro.baselines.kmax import KMaxNaiveEngine
from repro.baselines.naive import NaiveEngine
from repro.core.engine import ITAEngine
from repro.documents.corpus import SyntheticCorpusConfig
from repro.documents.window import CountBasedWindow, TimeBasedWindow
from repro.exceptions import ExperimentError
from repro.workloads.experiments import ExperimentDefinition, SweepPoint
from repro.workloads.generators import WorkloadConfig, build_workload
from repro.workloads.runner import (
    build_engine,
    run_experiment,
    run_point,
    spec_for,
)


def tiny_config(**overrides):
    base = WorkloadConfig(
        num_queries=8,
        query_length=3,
        k=3,
        window_size=25,
        measured_events=12,
        corpus=SyntheticCorpusConfig(dictionary_size=400, mean_log_length=3.0, seed=2),
        seed=2,
    )
    return base.with_overrides(**overrides) if overrides else base


def tiny_definition():
    points = (
        SweepPoint(label="a", value=1, config=tiny_config()),
        SweepPoint(label="b", value=2, config=tiny_config(query_length=5)),
    )
    return ExperimentDefinition(
        experiment_id="tiny",
        title="tiny experiment",
        paper_reference="test",
        x_axis="x",
        points=points,
        engines=("ita", "naive-kmax"),
    )


class TestEngineConstruction:
    """Engine-name semantics of the spec-registry construction path."""

    def test_engine_types(self):
        config = tiny_config()
        assert isinstance(build_engine("ita", config), ITAEngine)
        assert isinstance(build_engine("naive", config), NaiveEngine)
        assert isinstance(build_engine("naive-kmax", config), KMaxNaiveEngine)

    def test_unknown_engine_rejected(self):
        with pytest.raises(ExperimentError):
            build_engine("magic", tiny_config())

    def test_ita_ablation_variants(self):
        from repro.core.descent import ProbeOrder

        no_rollup = build_engine("ita-no-rollup", tiny_config())
        assert isinstance(no_rollup, ITAEngine)
        assert no_rollup.enable_rollup is False
        round_robin = build_engine("ita-round-robin", tiny_config())
        assert round_robin.probe_order is ProbeOrder.ROUND_ROBIN

    def test_window_type_follows_config(self):
        assert isinstance(build_engine("ita", tiny_config()).window, CountBasedWindow)
        time_config = tiny_config(time_based_window=True)
        assert isinstance(build_engine("ita", time_config).window, TimeBasedWindow)

    def test_kmax_multiplier_option(self):
        engine = build_engine("naive-kmax", tiny_config(), {"kmax_multiplier": 5.0})
        assert engine.policy.multiplier == 5.0

    def test_change_tracking_disabled_for_benchmarks(self):
        assert build_engine("ita", tiny_config()).track_changes is False

    def test_sharded_engine_names(self):
        from repro.cluster.engine import ShardedEngine
        from repro.cluster.placement import CostModelPlacement, RoundRobinPlacement

        default = build_engine("sharded-ita", tiny_config())
        assert isinstance(default, ShardedEngine)
        assert default.num_shards == 2
        assert isinstance(default.placement, CostModelPlacement)

        inlined = build_engine("sharded-ita-4", tiny_config(), {"placement": "round-robin"})
        assert inlined.num_shards == 4
        assert isinstance(inlined.placement, RoundRobinPlacement)

        by_option = build_engine("sharded-ita", tiny_config(), {"num_shards": 3})
        assert by_option.num_shards == 3

        baseline_shards = build_engine("sharded-naive-2", tiny_config())
        assert all(isinstance(s, NaiveEngine) for s in baseline_shards.shards)

    def test_sharded_typos_rejected(self):
        with pytest.raises(ExperimentError):
            build_engine("sharded_ita", tiny_config())
        with pytest.raises(ExperimentError):
            build_engine("shardedfoo", tiny_config())
        with pytest.raises(ExperimentError):
            build_engine("sharded-magic-2", tiny_config())


class TestSpecDelegation:
    """build_engine/spec_for are the only construction path of the harness."""

    def test_make_engine_shim_is_gone(self):
        # The deprecated alias finished its deprecation cycle; importing it
        # must fail so stale callers surface loudly instead of silently
        # re-growing a second construction path.
        import repro.workloads.runner as runner

        assert not hasattr(runner, "make_engine")
        assert "make_engine" not in runner.__all__

    def test_build_engine_does_not_warn(self):
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            build_engine("ita", tiny_config())

    def test_spec_for_reflects_config(self):
        config = tiny_config()
        spec = spec_for("sharded-ita-3", config)
        assert spec.kind == "sharded"
        assert spec.num_shards == 3
        assert spec.track_changes is False
        assert spec.window.kind == "count" and spec.window.size == config.window_size
        assert spec.calibration.dictionary_size == config.corpus.dictionary_size
        time_spec = spec_for("ita", tiny_config(time_based_window=True))
        assert time_spec.window.kind == "time"

    def test_build_engine_and_spec_build_agree(self):
        config = tiny_config()
        direct = build_engine("naive-kmax", config, {"kmax_multiplier": 3.0})
        modern = spec_for("naive-kmax", config, {"kmax_multiplier": 3.0}).build()
        assert type(direct) is type(modern)
        assert direct.policy.multiplier == modern.policy.multiplier
        assert direct.window.size == modern.window.size


class TestRunPoint:
    def test_measures_every_engine(self):
        definition = tiny_definition()
        result = run_point(definition.points[0], definition.engines)
        assert set(result.measurements) == {"ita", "naive-kmax"}
        for measurement in result.measurements.values():
            assert measurement.events == 12
            assert measurement.mean_ms >= 0.0
            assert measurement.counters.arrivals == 12

    def test_engines_agree_on_final_results(self):
        """Both engines fed the same workload must report identical answers."""
        point = tiny_definition().points[0]
        workload = build_workload(point.config)
        engines = {}
        for name in ("ita", "naive-kmax"):
            engine = build_engine(name, point.config)
            for document in workload.prefill:
                engine.process(document)
            for query in workload.queries:
                engine.register_query(query)
            for document in workload.measured:
                engine.process(document)
            engines[name] = engine
        for query in workload.queries:
            ita_scores = [round(e.score, 9) for e in engines["ita"].current_result(query.query_id)]
            kmax_scores = [round(e.score, 9) for e in engines["naive-kmax"].current_result(query.query_id)]
            assert ita_scores == kmax_scores

    def test_speedup_computed(self):
        definition = tiny_definition()
        result = run_point(definition.points[0], definition.engines)
        assert result.speedup("ita", "naive-kmax") > 0.0

    def test_progress_callback_invoked(self):
        messages = []
        definition = tiny_definition()
        run_point(definition.points[0], definition.engines, progress=messages.append)
        assert any("ita" in message for message in messages)


class TestRunExperiment:
    def test_runs_every_point(self):
        definition = tiny_definition()
        result = run_experiment(definition)
        assert len(result.points) == 2
        assert len(result.series("ita")) == 2
        assert len(result.speedups()) == 2
