"""Tests for result rendering."""

import pytest

from repro.documents.corpus import SyntheticCorpusConfig
from repro.monitoring.instrumentation import OperationCounters
from repro.monitoring.metrics import PercentileSummary
from repro.workloads.experiments import ExperimentDefinition, SweepPoint
from repro.workloads.generators import WorkloadConfig
from repro.workloads.reporting import (
    format_result_table,
    format_speedup_summary,
    result_rows,
)
from repro.workloads.runner import EngineMeasurement, ExperimentResult, PointResult


def synthetic_result():
    """Build an ExperimentResult by hand (no engines involved)."""
    config = WorkloadConfig(
        num_queries=5, query_length=4, k=2, window_size=10, measured_events=5,
        corpus=SyntheticCorpusConfig(dictionary_size=100, seed=1), seed=1,
    )
    definition = ExperimentDefinition(
        experiment_id="fake",
        title="fake experiment",
        paper_reference="Figure X",
        x_axis="n",
        points=(
            SweepPoint(label="n=4", value=4, config=config),
            SweepPoint(label="n=8", value=8, config=config),
        ),
        engines=("ita", "naive-kmax"),
    )

    def measurement(name, mean, scores):
        counters = OperationCounters(scores_computed=scores)
        return EngineMeasurement(
            engine=name,
            mean_ms=mean,
            summary=PercentileSummary.from_samples([mean]),
            counters=counters,
            events=10,
        )

    result = ExperimentResult(definition=definition)
    result.points.append(
        PointResult(
            point=definition.points[0],
            measurements={
                "ita": measurement("ita", 0.5, 100),
                "naive-kmax": measurement("naive-kmax", 5.0, 2_000),
            },
        )
    )
    result.points.append(
        PointResult(
            point=definition.points[1],
            measurements={
                "ita": measurement("ita", 1.0, 200),
                "naive-kmax": measurement("naive-kmax", 6.0, 2_000),
            },
        )
    )
    return result


class TestResultRows:
    def test_one_row_per_point_with_speedups(self):
        rows = result_rows(synthetic_result())
        assert len(rows) == 2
        assert rows[0]["x"] == "n=4"
        assert rows[0]["ita_ms"] == 0.5
        assert rows[0]["speedup"] == pytest.approx(10.0)
        assert rows[1]["speedup"] == pytest.approx(6.0)

    def test_scores_per_event_included(self):
        rows = result_rows(synthetic_result())
        assert rows[0]["ita_scores_per_event"] == pytest.approx(10.0)
        assert rows[0]["naive-kmax_scores_per_event"] == pytest.approx(200.0)


class TestFormatting:
    def test_table_contains_labels_and_engines(self):
        table = format_result_table(synthetic_result())
        assert "Figure X" in table
        assert "n=4" in table and "n=8" in table
        assert "ita (ms)" in table and "naive-kmax (ms)" in table
        assert "10.0x" in table

    def test_speedup_summary_reports_range(self):
        summary = format_speedup_summary(synthetic_result())
        assert "6.0x" in summary and "10.0x" in summary
        assert "ita" in summary.lower()

    def test_speedup_summary_without_competitor(self):
        result = synthetic_result()
        ita_only = ExperimentResult(
            definition=ExperimentDefinition(
                experiment_id=result.definition.experiment_id,
                title=result.definition.title,
                paper_reference=result.definition.paper_reference,
                x_axis=result.definition.x_axis,
                points=result.definition.points,
                engines=("ita",),
            ),
            points=result.points,
        )
        assert "no ITA/competitor" in format_speedup_summary(ita_only)
